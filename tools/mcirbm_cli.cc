// mcirbm_cli — command-line front end for the library.
//
// Subcommands:
//   synth      generate one of the paper-equivalent synthetic datasets
//   select-k   label-free choice of the cluster count (silhouette sweep)
//   supervise  report the multi-clustering consensus for a CSV
//   train      train an encoder (rbm|grbm|sls-rbm|sls-grbm) on a CSV
//   transform  map a CSV through a saved encoder, write feature CSV
//   eval       cluster a CSV (optionally through a saved encoder) and
//              print the paper's external metrics against the labels
//
// CSV format: numeric feature columns with a trailing integer label
// column (header row required), as written by `synth` / data/io.h.
//
// Examples:
//   mcirbm_cli synth --family msra --index 8 --out vt.csv
//   mcirbm_cli train --data vt.csv --model sls-grbm --standardize \
//       --out vt_model.txt
//   mcirbm_cli eval --data vt.csv --model-file vt_model.txt \
//       --standardize --clusterer kmeans
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <stdexcept>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "clustering/kmeans.h"
#include "core/model_selection.h"
#include "core/pipeline.h"
#include "data/io.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/algorithms.h"
#include "eval/experiment.h"
#include "metrics/external.h"
#include "parallel/thread_pool.h"
#include "rbm/serialize.h"
#include "util/string_util.h"

namespace {

using namespace mcirbm;  // NOLINT: CLI driver

// Minimal --flag value parser; flags without '--' are positional.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        const std::string key = arg.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[key] = argv[++i];
        } else {
          // Valueless flag. The empty sentinel keeps Has() working for
          // boolean flags while making GetInt/GetDouble reject a numeric
          // flag whose value was forgotten (e.g. `--threads --seed 7`).
          values_[key] = "";
        }
      } else {
        std::cerr << "unexpected positional argument: " << arg << "\n";
        ok_ = false;
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& fallback = "")
      const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int GetInt(const std::string& key, int fallback) const {
    if (!Has(key)) return fallback;
    try {
      std::size_t pos = 0;
      const int v = std::stoi(Get(key), &pos);
      if (pos != Get(key).size()) throw std::invalid_argument(key);
      return v;
    } catch (const std::exception&) {
      std::cerr << "error: flag --" << key << " expects an integer, got '"
                << Get(key) << "'\n";
      std::exit(2);
    }
  }
  double GetDouble(const std::string& key, double fallback) const {
    if (!Has(key)) return fallback;
    try {
      std::size_t pos = 0;
      const double v = std::stod(Get(key), &pos);
      if (pos != Get(key).size()) throw std::invalid_argument(key);
      return v;
    } catch (const std::exception&) {
      std::cerr << "error: flag --" << key << " expects a number, got '"
                << Get(key) << "'\n";
      std::exit(2);
    }
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

// Applies the representation flags to `x` in the documented order.
void ApplyTransforms(const Args& args, linalg::Matrix* x) {
  if (args.Has("standardize")) data::StandardizeInPlace(x);
  if (args.Has("minmax")) data::MinMaxScaleInPlace(x);
  if (args.Has("binarize")) {
    data::MinMaxScaleInPlace(x);
    data::BinarizeAtColumnMeanInPlace(x);
  }
}

core::ModelKind ParseModelKind(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "rbm") return core::ModelKind::kRbm;
  if (name == "grbm") return core::ModelKind::kGrbm;
  if (name == "sls-rbm") return core::ModelKind::kSlsRbm;
  if (name == "sls-grbm") return core::ModelKind::kSlsGrbm;
  *ok = false;
  return core::ModelKind::kRbm;
}

// Reconstructs an inference-equivalent model from a parameter file (the
// stored name chooses sigmoid vs linear reconstruction; sls variants are
// inference-identical to their plain bases).
std::unique_ptr<rbm::RbmBase> LoadModelFile(const std::string& path,
                                            std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return nullptr;
  }
  std::string magic, name, shape_line;
  std::getline(in, magic);
  std::getline(in, name);
  std::getline(in, shape_line);
  std::istringstream shape(shape_line);
  int nv = 0, nh = 0;
  if (!(shape >> nv >> nh) || nv <= 0 || nh <= 0) {
    *error = "bad parameter file " + path;
    return nullptr;
  }
  rbm::RbmConfig config;
  config.num_visible = nv;
  config.num_hidden = nh;
  std::unique_ptr<rbm::RbmBase> model;
  if (name.find("grbm") != std::string::npos) {
    model = std::make_unique<rbm::Grbm>(config);
  } else {
    model = std::make_unique<rbm::Rbm>(config);
  }
  const Status status = rbm::LoadParameters(path, model.get());
  if (!status.ok()) {
    *error = status.message();
    return nullptr;
  }
  return model;
}

int RunSynth(const Args& args) {
  const std::string family = args.Get("family", "msra");
  const int index = args.GetInt("index", 0);
  const std::string out = args.Get("out");
  if (out.empty()) return Fail("synth needs --out <csv>");
  const std::uint64_t seed = args.GetInt("seed", 7);

  data::Dataset ds;
  if (family == "msra") {
    if (index < 0 || index >= data::NumMsraDatasets()) {
      return Fail("msra index out of range");
    }
    ds = data::GenerateMsraLike(index, seed);
  } else if (family == "uci") {
    if (index < 0 || index >= data::NumUciDatasets()) {
      return Fail("uci index out of range");
    }
    ds = data::GenerateUciLike(index, seed);
  } else {
    return Fail("unknown family '" + family + "' (msra|uci)");
  }
  const Status status = data::SaveDatasetCsv(ds, out);
  if (!status.ok()) return Fail(status.message());
  std::cout << "wrote " << ds.name << ": " << ds.num_instances() << " x "
            << ds.num_features() << " (+label) to " << out << "\n";
  return 0;
}

int RunSelectK(const Args& args) {
  const std::string path = args.Get("data");
  if (path.empty()) return Fail("select-k needs --data <csv>");
  auto loaded = data::LoadDatasetCsv(path, path);
  if (!loaded.ok()) return Fail(loaded.status().message());
  data::Dataset ds = std::move(loaded).value();
  ApplyTransforms(args, &ds.x);
  const int k_min = args.GetInt("kmin", 2);
  const int k_max = args.GetInt("kmax", 8);
  const auto selection = core::SelectNumClusters(
      ds.x, k_min, k_max, args.GetInt("seed", 7));
  std::cout << "k   silhouette\n";
  for (const auto& candidate : selection.candidates) {
    std::cout << candidate.k << "   "
              << FormatDouble(candidate.silhouette, 4)
              << (candidate.k == selection.best_k ? "   <- selected" : "")
              << "\n";
  }
  return 0;
}

int RunSupervise(const Args& args) {
  const std::string path = args.Get("data");
  if (path.empty()) return Fail("supervise needs --data <csv>");
  auto loaded = data::LoadDatasetCsv(path, path);
  if (!loaded.ok()) return Fail(loaded.status().message());
  data::Dataset ds = std::move(loaded).value();
  ApplyTransforms(args, &ds.x);

  core::SupervisionConfig config;
  config.num_clusters = args.GetInt("clusters", ds.num_classes);
  config.kmeans_voters = args.GetInt("kmeans-voters", 1);
  config.use_agglomerative = args.Has("with-agglomerative");
  config.use_dbscan = args.Has("with-dbscan");
  config.use_gmm = args.Has("with-gmm");
  config.use_spectral = args.Has("with-spectral");
  if (args.Get("strategy", "unanimous") == "majority") {
    config.strategy = voting::VoteStrategy::kMajority;
  }
  const auto sup = core::ComputeSelfLearningSupervision(
      ds.x, config, args.GetInt("seed", 7));
  std::cout << "consensus: " << sup.num_clusters << " credible clusters, "
            << sup.NumCredible() << "/" << ds.num_instances()
            << " instances (coverage " << FormatDouble(sup.Coverage(), 3)
            << ")\n";
  return 0;
}

int RunTrain(const Args& args) {
  const std::string path = args.Get("data");
  const std::string out = args.Get("out");
  if (path.empty() || out.empty()) {
    return Fail("train needs --data <csv> and --out <path>");
  }
  bool kind_ok = false;
  const core::ModelKind kind =
      ParseModelKind(args.Get("model", "sls-grbm"), &kind_ok);
  if (!kind_ok) return Fail("unknown --model (rbm|grbm|sls-rbm|sls-grbm)");

  auto loaded = data::LoadDatasetCsv(path, path);
  if (!loaded.ok()) return Fail(loaded.status().message());
  data::Dataset ds = std::move(loaded).value();
  ApplyTransforms(args, &ds.x);

  const bool grbm_family = kind == core::ModelKind::kGrbm ||
                           kind == core::ModelKind::kSlsGrbm;
  const eval::ExperimentConfig paper = eval::MakePaperConfig(grbm_family);
  core::PipelineConfig config;
  config.model = kind;
  config.rbm = paper.rbm;
  config.sls = paper.sls;
  config.supervision = paper.supervision;
  config.rbm.num_hidden = args.GetInt("hidden", paper.rbm.num_hidden);
  config.rbm.epochs = args.GetInt("epochs", paper.rbm.epochs);
  config.rbm.learning_rate = args.GetDouble("lr", paper.rbm.learning_rate);
  config.sls.eta = args.GetDouble("eta", paper.sls.eta);
  config.sls.supervision_scale =
      args.GetDouble("scale", paper.sls.supervision_scale);
  config.supervision.num_clusters =
      args.GetInt("clusters", ds.num_classes);

  const auto result =
      core::RunEncoderPipeline(ds.x, config, args.GetInt("seed", 7));
  std::cout << "trained " << result.model->name()
            << "; final reconstruction error "
            << FormatDouble(result.final_reconstruction_error, 4) << "\n";
  if (config.model == core::ModelKind::kSlsRbm ||
      config.model == core::ModelKind::kSlsGrbm) {
    std::cout << "supervision coverage "
              << FormatDouble(result.supervision.Coverage(), 3) << " ("
              << result.supervision.num_clusters << " credible clusters)\n";
  }
  const Status status = rbm::SaveParameters(*result.model, out);
  if (!status.ok()) return Fail(status.message());
  std::cout << "saved parameters to " << out << "\n";
  return 0;
}

int RunTransform(const Args& args) {
  const std::string path = args.Get("data");
  const std::string model_path = args.Get("model-file");
  const std::string out = args.Get("out");
  if (path.empty() || model_path.empty() || out.empty()) {
    return Fail("transform needs --data, --model-file and --out");
  }
  auto loaded = data::LoadDatasetCsv(path, path);
  if (!loaded.ok()) return Fail(loaded.status().message());
  data::Dataset ds = std::move(loaded).value();
  ApplyTransforms(args, &ds.x);

  std::string error;
  const auto model = LoadModelFile(model_path, &error);
  if (!model) return Fail(error);

  data::Dataset features = ds;
  features.x = model->HiddenFeatures(ds.x);
  features.name = ds.name + ":hidden";
  const Status status = data::SaveDatasetCsv(features, out);
  if (!status.ok()) return Fail(status.message());
  std::cout << "wrote " << features.x.rows() << " x " << features.x.cols()
            << " hidden features (+label) to " << out << "\n";
  return 0;
}

int RunEval(const Args& args) {
  const std::string path = args.Get("data");
  if (path.empty()) return Fail("eval needs --data <csv>");
  auto loaded = data::LoadDatasetCsv(path, path);
  if (!loaded.ok()) return Fail(loaded.status().message());
  data::Dataset ds = std::move(loaded).value();
  linalg::Matrix x = ds.x;
  ApplyTransforms(args, &x);

  if (args.Has("model-file")) {
    std::string error;
    const auto model = LoadModelFile(args.Get("model-file"), &error);
    if (!model) return Fail(error);
    x = model->HiddenFeatures(x);
  }

  const std::string clusterer_name = args.Get("clusterer", "kmeans");
  eval::ClustererKind kind;
  if (clusterer_name == "kmeans") {
    kind = eval::ClustererKind::kKMeans;
  } else if (clusterer_name == "dp") {
    kind = eval::ClustererKind::kDensityPeaks;
  } else if (clusterer_name == "ap") {
    kind = eval::ClustererKind::kAffinityProp;
  } else {
    return Fail("unknown --clusterer (kmeans|dp|ap)");
  }
  const int k = args.GetInt("k", ds.num_classes);
  const auto result =
      eval::RunClusterer(kind, x, k, args.GetInt("seed", 7));
  const auto m = metrics::ComputeAll(ds.labels, result.assignment);
  std::cout << "clusterer " << eval::ClustererKindName(kind) << ", k=" << k
            << ", " << result.num_clusters << " clusters found\n";
  std::cout << "accuracy " << FormatDouble(m.accuracy, 4) << "  purity "
            << FormatDouble(m.purity, 4) << "  rand "
            << FormatDouble(m.rand_index, 4) << "  FMI "
            << FormatDouble(m.fmi, 4) << "  ARI "
            << FormatDouble(m.ari, 4) << "  NMI "
            << FormatDouble(m.nmi, 4) << "\n";
  return 0;
}

void PrintUsage() {
  std::cout <<
      "usage: mcirbm_cli <command> [--flag value ...]\n"
      "\n"
      "global flags:\n"
      "  --threads N   worker threads for the parallel runtime (default:\n"
      "                MCIRBM_THREADS env var, else hardware concurrency;\n"
      "                results are identical at any thread count)\n"
      "\n"
      "commands:\n"
      "  synth      --family msra|uci --index N --out <csv> [--seed N]\n"
      "  select-k   --data <csv> [--kmin 2] [--kmax 8] [--standardize|"
      "--binarize]\n"
      "  supervise  --data <csv> [--clusters K] [--strategy "
      "unanimous|majority]\n"
      "             [--kmeans-voters N] [--with-agglomerative] "
      "[--with-dbscan]\n"
      "             [--with-gmm] [--with-spectral] [--standardize|"
      "--binarize]\n"
      "  train      --data <csv> --model rbm|grbm|sls-rbm|sls-grbm --out "
      "<path>\n"
      "             [--hidden N] [--epochs N] [--lr F] [--eta F] "
      "[--scale F]\n"
      "             [--clusters K] [--standardize|--binarize] [--seed N]\n"
      "  transform  --data <csv> --model-file <path> --out <csv>\n"
      "             [--standardize|--binarize]\n"
      "  eval       --data <csv> [--model-file <path>] [--clusterer "
      "kmeans|dp|ap]\n"
      "             [--k K] [--standardize|--binarize] [--seed N]\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (!args.ok()) return 1;
  // Pool width: --threads beats the MCIRBM_THREADS env var beats hardware
  // concurrency. Applies to every subcommand.
  if (args.Has("threads")) {
    const int threads = args.GetInt("threads", 0);
    if (threads <= 0) return Fail("--threads must be a positive integer");
    parallel::SetNumThreads(threads);
  }
  if (command == "synth") return RunSynth(args);
  if (command == "select-k") return RunSelectK(args);
  if (command == "supervise") return RunSupervise(args);
  if (command == "train") return RunTrain(args);
  if (command == "transform") return RunTransform(args);
  if (command == "eval") return RunEval(args);
  if (command == "help" || command == "--help") {
    PrintUsage();
    return 0;
  }
  std::cerr << "unknown command '" << command << "'\n";
  PrintUsage();
  return 1;
}
