#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/ops.h"

namespace mcirbm::data {
namespace {

GaussianMixtureSpec BaseSpec() {
  GaussianMixtureSpec spec;
  spec.name = "test";
  spec.num_classes = 3;
  spec.num_instances = 300;
  spec.num_features = 10;
  spec.separation = 4.0;
  return spec;
}

TEST(SyntheticTest, ShapeMatchesSpec) {
  const Dataset d = GenerateGaussianMixture(BaseSpec(), 1);
  EXPECT_EQ(d.num_instances(), 300u);
  EXPECT_EQ(d.num_features(), 10u);
  EXPECT_EQ(d.num_classes, 3);
  d.CheckValid();
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  const Dataset a = GenerateGaussianMixture(BaseSpec(), 9);
  const Dataset b = GenerateGaussianMixture(BaseSpec(), 9);
  EXPECT_TRUE(a.x.AllClose(b.x, 0));
  EXPECT_EQ(a.labels, b.labels);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  const Dataset a = GenerateGaussianMixture(BaseSpec(), 1);
  const Dataset b = GenerateGaussianMixture(BaseSpec(), 2);
  EXPECT_FALSE(a.x.AllClose(b.x, 1e-6));
}

TEST(SyntheticTest, BalancedByDefault) {
  const Dataset d = GenerateGaussianMixture(BaseSpec(), 3);
  const auto counts = d.ClassCounts();
  EXPECT_EQ(counts[0], 100);
  EXPECT_EQ(counts[1], 100);
  EXPECT_EQ(counts[2], 100);
}

TEST(SyntheticTest, ProportionsRespected) {
  GaussianMixtureSpec spec = BaseSpec();
  spec.num_classes = 2;
  spec.num_instances = 1000;
  spec.class_proportions = {0.8, 0.2};
  const Dataset d = GenerateGaussianMixture(spec, 4);
  const auto counts = d.ClassCounts();
  EXPECT_NEAR(counts[0], 800, 1);
  EXPECT_NEAR(counts[1], 200, 1);
}

TEST(SyntheticTest, RowsAreShuffled) {
  const Dataset d = GenerateGaussianMixture(BaseSpec(), 5);
  // If unshuffled, the first 100 labels would all be class 0.
  int first_block_class0 = 0;
  for (int i = 0; i < 100; ++i) first_block_class0 += d.labels[i] == 0;
  EXPECT_LT(first_block_class0, 90);
  EXPECT_GT(first_block_class0, 10);
}

// Mean distance between same-class vs cross-class instances should
// reflect the separation knob: larger separation, larger contrast.
double ClassContrast(const Dataset& d) {
  double same = 0, cross = 0;
  int n_same = 0, n_cross = 0;
  for (std::size_t i = 0; i < d.num_instances(); i += 7) {
    for (std::size_t j = i + 1; j < d.num_instances(); j += 7) {
      const double dist =
          linalg::SquaredDistance(d.x.Row(i), d.x.Row(j));
      if (d.labels[i] == d.labels[j]) {
        same += dist;
        ++n_same;
      } else {
        cross += dist;
        ++n_cross;
      }
    }
  }
  return (cross / n_cross) / (same / n_same);
}

TEST(SyntheticTest, SeparationIncreasesClassContrast) {
  GaussianMixtureSpec tight = BaseSpec();
  tight.separation = 0.5;
  GaussianMixtureSpec wide = BaseSpec();
  wide.separation = 6.0;
  const double contrast_tight =
      ClassContrast(GenerateGaussianMixture(tight, 6));
  const double contrast_wide =
      ClassContrast(GenerateGaussianMixture(wide, 6));
  EXPECT_GT(contrast_wide, contrast_tight + 0.5);
}

TEST(SyntheticTest, NoiseDimsCarryNoSignal) {
  GaussianMixtureSpec spec = BaseSpec();
  spec.num_features = 20;
  spec.informative_fraction = 0.25;  // dims 5..19 are noise
  const Dataset d = GenerateGaussianMixture(spec, 7);
  // Per-class mean of a noise dim should be ~0 for every class.
  for (int c = 0; c < spec.num_classes; ++c) {
    double mean = 0;
    int count = 0;
    for (std::size_t i = 0; i < d.num_instances(); ++i) {
      if (d.labels[i] == c) {
        mean += d.x(i, 15);
        ++count;
      }
    }
    EXPECT_NEAR(mean / count, 0.0, 0.5);
  }
}

TEST(SyntheticTest, ConfusionFractionDegradesSeparation) {
  GaussianMixtureSpec clean = BaseSpec();
  GaussianMixtureSpec confused = BaseSpec();
  confused.confusion_fraction = 0.45;
  const double c_clean = ClassContrast(GenerateGaussianMixture(clean, 8));
  const double c_conf =
      ClassContrast(GenerateGaussianMixture(confused, 8));
  EXPECT_LT(c_conf, c_clean);
}

TEST(SyntheticDeathTest, BadProportionsAbort) {
  GaussianMixtureSpec spec = BaseSpec();
  spec.class_proportions = {0.5, 0.2, 0.1};  // sums to 0.8
  EXPECT_DEATH(GenerateGaussianMixture(spec, 1), "sum to 1");
}

TEST(SyntheticDeathTest, ZeroClassesAbort) {
  GaussianMixtureSpec spec = BaseSpec();
  spec.num_classes = 0;
  EXPECT_DEATH(GenerateGaussianMixture(spec, 1), "CHECK failed");
}


TEST(SyntheticSharedModesTest, LabelsOnlyPartiallyFollowModes) {
  GaussianMixtureSpec spec = BaseSpec();
  spec.num_instances = 600;
  spec.shared_modes = 6;
  spec.mode_class_affinity = 0.9;
  const Dataset d = GenerateGaussianMixture(spec, 21);
  d.CheckValid();
  EXPECT_EQ(d.num_instances(), 600u);
  // All classes still present with ~balanced counts.
  for (int c : d.ClassCounts()) EXPECT_EQ(c, 200);
}

TEST(SyntheticSharedModesTest, AffinityControlsClassContrast) {
  GaussianMixtureSpec lo = BaseSpec();
  lo.shared_modes = 6;
  lo.mode_class_affinity = 0.4;
  GaussianMixtureSpec hi = lo;
  hi.mode_class_affinity = 0.95;
  const double c_lo = ClassContrast(GenerateGaussianMixture(lo, 22));
  const double c_hi = ClassContrast(GenerateGaussianMixture(hi, 22));
  // Higher affinity => class labels align with spatial modes more.
  EXPECT_GT(c_hi, c_lo);
}

TEST(SyntheticSharedModesDeathTest, FewerModesThanClassesAborts) {
  GaussianMixtureSpec spec = BaseSpec();
  spec.shared_modes = 2;  // < num_classes = 3
  EXPECT_DEATH(GenerateGaussianMixture(spec, 1), "one mode per class");
}

TEST(SyntheticCoreHaloTest, HaloInflatesSpread) {
  GaussianMixtureSpec core_only = BaseSpec();
  GaussianMixtureSpec with_halo = BaseSpec();
  with_halo.core_fraction = 0.5;
  with_halo.halo_scale = 4.0;
  const Dataset a = GenerateGaussianMixture(core_only, 23);
  const Dataset b = GenerateGaussianMixture(with_halo, 23);
  // Mean within-class spread must grow with a halo.
  auto spread = [](const Dataset& d) {
    double total = 0;
    int count = 0;
    for (std::size_t i = 0; i < d.num_instances(); i += 5) {
      for (std::size_t j = i + 5; j < d.num_instances(); j += 5) {
        if (d.labels[i] == d.labels[j]) {
          total += linalg::SquaredDistance(d.x.Row(i), d.x.Row(j));
          ++count;
        }
      }
    }
    return total / count;
  };
  EXPECT_GT(spread(b), spread(a) * 1.3);
}

TEST(SyntheticNoiseScaleTest, HeterogeneousNoiseDimsHaveLargerVariance) {
  GaussianMixtureSpec spec = BaseSpec();
  spec.num_features = 40;
  spec.informative_fraction = 0.25;  // dims 10..39 are noise
  spec.noise_scale_max = 6.0;
  const Dataset d = GenerateGaussianMixture(spec, 24);
  double noise_var = 0;
  for (std::size_t j = 10; j < 40; ++j) {
    double mean = 0, m2 = 0;
    for (std::size_t i = 0; i < d.num_instances(); ++i) {
      mean += d.x(i, j);
      m2 += d.x(i, j) * d.x(i, j);
    }
    mean /= d.num_instances();
    noise_var += m2 / d.num_instances() - mean * mean;
  }
  noise_var /= 30;
  // E[s^2] for s ~ U(1,6) is (36+6+1)/3 ≈ 14.3; homogeneous would be 1.
  EXPECT_GT(noise_var, 5.0);
}

TEST(SyntheticProportionSpreadTest, DominantClassIsMoreDiffuse) {
  GaussianMixtureSpec spec = BaseSpec();
  spec.num_classes = 2;
  spec.num_instances = 400;
  spec.class_proportions = {0.8, 0.2};
  spec.scale_spread_by_proportion = true;
  spec.separation = 8.0;
  const Dataset d = GenerateGaussianMixture(spec, 25);
  double spread[2] = {0, 0};
  int count[2] = {0, 0};
  // Mean squared distance to the class mean, per class.
  linalg::Matrix mean(2, d.num_features());
  int n_class[2] = {0, 0};
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    ++n_class[d.labels[i]];
    for (std::size_t j = 0; j < d.num_features(); ++j) {
      mean(d.labels[i], j) += d.x(i, j);
    }
  }
  for (int c = 0; c < 2; ++c) {
    for (std::size_t j = 0; j < d.num_features(); ++j) {
      mean(c, j) /= n_class[c];
    }
  }
  for (std::size_t i = 0; i < d.num_instances(); ++i) {
    spread[d.labels[i]] +=
        linalg::SquaredDistance(d.x.Row(i), mean.Row(d.labels[i]));
    ++count[d.labels[i]];
  }
  EXPECT_GT(spread[0] / count[0], spread[1] / count[1]);
}
}  // namespace
}  // namespace mcirbm::data
