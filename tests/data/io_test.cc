#include "data/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/synthetic.h"

namespace mcirbm::data {
namespace {

class DataIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/dataset_io_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(DataIoTest, RoundTripPreservesEverything) {
  GaussianMixtureSpec spec;
  spec.name = "rt";
  spec.num_classes = 3;
  spec.num_instances = 40;
  spec.num_features = 5;
  const Dataset original = GenerateGaussianMixture(spec, 11);

  ASSERT_TRUE(SaveDatasetCsv(original, path_).ok());
  auto loaded = LoadDatasetCsv(path_, "rt");
  ASSERT_TRUE(loaded.ok());
  const Dataset& d = loaded.value();
  EXPECT_EQ(d.num_instances(), original.num_instances());
  EXPECT_EQ(d.num_features(), original.num_features());
  EXPECT_EQ(d.num_classes, original.num_classes);
  EXPECT_EQ(d.labels, original.labels);
  EXPECT_TRUE(d.x.AllClose(original.x, 1e-9));
}

TEST_F(DataIoTest, MissingFileFails) {
  auto loaded = LoadDatasetCsv("/no/such/file.csv", "x");
  EXPECT_FALSE(loaded.ok());
}

TEST_F(DataIoTest, NonIntegerLabelFails) {
  std::ofstream out(path_);
  out << "f0,label\n1.0,0.5\n";
  out.close();
  auto loaded = LoadDatasetCsv(path_, "x");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(DataIoTest, NegativeLabelFails) {
  std::ofstream out(path_);
  out << "f0,label\n1.0,-1\n";
  out.close();
  EXPECT_FALSE(LoadDatasetCsv(path_, "x").ok());
}

TEST_F(DataIoTest, SingleColumnFails) {
  std::ofstream out(path_);
  out << "label\n0\n";
  out.close();
  EXPECT_FALSE(LoadDatasetCsv(path_, "x").ok());
}

TEST_F(DataIoTest, NumClassesInferredFromMaxLabel) {
  std::ofstream out(path_);
  out << "f0,label\n1,0\n2,3\n";
  out.close();
  auto loaded = LoadDatasetCsv(path_, "x");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_classes, 4);
}

}  // namespace
}  // namespace mcirbm::data
