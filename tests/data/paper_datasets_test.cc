#include "data/paper_datasets.h"

#include <gtest/gtest.h>

namespace mcirbm::data {
namespace {

TEST(PaperDatasetsTest, CountsMatchPaperTables) {
  EXPECT_EQ(NumMsraDatasets(), 9);  // Table II
  EXPECT_EQ(NumUciDatasets(), 6);   // Table III
}

// Table II rows: name, classes, instances, features.
struct Row {
  const char* name;
  int classes, instances, features;
};

constexpr Row kTable2[] = {
    {"BO", 3, 896, 892}, {"WA", 3, 922, 899}, {"WR", 3, 897, 899},
    {"BC", 3, 932, 892}, {"VE", 3, 872, 899}, {"AM", 3, 930, 892},
    {"VI", 3, 799, 899}, {"WP", 3, 919, 899}, {"VT", 3, 879, 899},
};

constexpr Row kTable3[] = {
    {"HS", 2, 306, 3},   {"QB", 2, 1055, 41}, {"SH", 2, 267, 22},
    {"SC", 2, 540, 18},  {"BCW", 2, 569, 32}, {"IR", 3, 150, 4},
};

class MsraInfoTest : public ::testing::TestWithParam<int> {};

TEST_P(MsraInfoTest, InfoMatchesTable2) {
  const int i = GetParam();
  const PaperDatasetInfo& info = MsraDatasetInfo(i);
  EXPECT_EQ(info.short_name, kTable2[i].name);
  EXPECT_EQ(info.classes, kTable2[i].classes);
  EXPECT_EQ(info.instances, kTable2[i].instances);
  EXPECT_EQ(info.features, kTable2[i].features);
  EXPECT_EQ(info.number, i + 1);
}

TEST_P(MsraInfoTest, GeneratedShapeMatchesTable2) {
  const int i = GetParam();
  const Dataset d = GenerateMsraLike(i, 1);
  EXPECT_EQ(d.num_instances(),
            static_cast<std::size_t>(kTable2[i].instances));
  EXPECT_EQ(d.num_features(),
            static_cast<std::size_t>(kTable2[i].features));
  EXPECT_EQ(d.num_classes, kTable2[i].classes);
  d.CheckValid();
}

INSTANTIATE_TEST_SUITE_P(AllMsra, MsraInfoTest, ::testing::Range(0, 9));

class UciInfoTest : public ::testing::TestWithParam<int> {};

TEST_P(UciInfoTest, InfoMatchesTable3) {
  const int i = GetParam();
  const PaperDatasetInfo& info = UciDatasetInfo(i);
  EXPECT_EQ(info.short_name, kTable3[i].name);
  EXPECT_EQ(info.classes, kTable3[i].classes);
  EXPECT_EQ(info.instances, kTable3[i].instances);
  EXPECT_EQ(info.features, kTable3[i].features);
}

TEST_P(UciInfoTest, GeneratedShapeMatchesTable3) {
  const int i = GetParam();
  const Dataset d = GenerateUciLike(i, 1);
  EXPECT_EQ(d.num_instances(),
            static_cast<std::size_t>(kTable3[i].instances));
  EXPECT_EQ(d.num_features(),
            static_cast<std::size_t>(kTable3[i].features));
  EXPECT_EQ(d.num_classes, kTable3[i].classes);
  d.CheckValid();
}

INSTANTIATE_TEST_SUITE_P(AllUci, UciInfoTest, ::testing::Range(0, 6));

TEST(PaperDatasetsTest, MsraSetsAreImbalanced) {
  // MSRA-MM relevance classes are dominated by one level; purity in the
  // paper is 0.73-0.95, implying a dominant class.
  const Dataset d = GenerateMsraLike(0, 1);
  const auto counts = d.ClassCounts();
  const int max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(static_cast<double>(max_count) / d.num_instances(), 0.55);
}

TEST(PaperDatasetsTest, IrisLikeIsBalancedThreeClass) {
  const Dataset d = GenerateUciLike(5, 1);
  const auto counts = d.ClassCounts();
  EXPECT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 50);
  EXPECT_EQ(counts[1], 50);
  EXPECT_EQ(counts[2], 50);
}

TEST(PaperDatasetsTest, SeedChangesData) {
  const Dataset a = GenerateUciLike(0, 1);
  const Dataset b = GenerateUciLike(0, 2);
  EXPECT_FALSE(a.x.AllClose(b.x, 1e-9));
}

TEST(PaperDatasetsDeathTest, OutOfRangeIndexAborts) {
  EXPECT_DEATH(MsraDatasetInfo(9), "CHECK failed");
  EXPECT_DEATH(UciDatasetInfo(-1), "CHECK failed");
}

}  // namespace
}  // namespace mcirbm::data
