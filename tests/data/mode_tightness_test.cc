// Tests for GaussianMixtureSpec::mode_tightness_exponent — minority-owned
// shared modes become spatially compact, majority-owned modes diffuse.
#include <cmath>
#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace mcirbm::data {
namespace {

GaussianMixtureSpec BaseSpec() {
  GaussianMixtureSpec spec;
  spec.name = "tightness";
  spec.num_classes = 3;
  spec.num_instances = 1200;
  spec.num_features = 20;
  spec.informative_fraction = 1.0;
  spec.separation = 12.0;  // modes far apart: within-mode spread dominates
  spec.class_proportions = {0.7, 0.2, 0.1};
  spec.shared_modes = 3;  // one mode per class for a clean ownership map
  spec.mode_class_affinity = 1.0;  // every instance on its own class mode
  return spec;
}

// Mean squared deviation of class-c rows around the class mean.
double ClassSpread(const Dataset& ds, int c) {
  const std::size_t d = ds.x.cols();
  std::vector<double> mean(d, 0.0);
  std::size_t count = 0;
  for (std::size_t r = 0; r < ds.x.rows(); ++r) {
    if (ds.labels[r] != c) continue;
    ++count;
    for (std::size_t j = 0; j < d; ++j) mean[j] += ds.x(r, j);
  }
  for (auto& m : mean) m /= static_cast<double>(count);
  double spread = 0;
  for (std::size_t r = 0; r < ds.x.rows(); ++r) {
    if (ds.labels[r] != c) continue;
    for (std::size_t j = 0; j < d; ++j) {
      const double dev = ds.x(r, j) - mean[j];
      spread += dev * dev;
    }
  }
  return spread / static_cast<double>(count * d);
}

TEST(ModeTightnessTest, OffByDefaultClassesHaveSimilarSpread) {
  const Dataset ds = GenerateGaussianMixture(BaseSpec(), 3);
  const double majority = ClassSpread(ds, 0);
  const double minority = ClassSpread(ds, 2);
  EXPECT_NEAR(majority / minority, 1.0, 0.25);
}

TEST(ModeTightnessTest, ExponentCompactsMinorityModes) {
  GaussianMixtureSpec spec = BaseSpec();
  spec.mode_tightness_exponent = 0.6;
  const Dataset ds = GenerateGaussianMixture(spec, 3);
  // Spread scale: pow(k * prop, 2 * 0.6) in variance units.
  const double majority = ClassSpread(ds, 0);  // prop 0.7 -> (2.1)^1.2
  const double minority = ClassSpread(ds, 2);  // prop 0.1 -> (0.3)^1.2
  const double expected_ratio =
      std::pow(3 * 0.7, 1.2) / std::pow(3 * 0.1, 1.2);
  EXPECT_GT(majority, minority);
  EXPECT_NEAR(majority / minority, expected_ratio, 0.35 * expected_ratio);
}

TEST(ModeTightnessTest, LargerExponentWidensTheGap) {
  GaussianMixtureSpec weak = BaseSpec();
  weak.mode_tightness_exponent = 0.3;
  GaussianMixtureSpec strong = BaseSpec();
  strong.mode_tightness_exponent = 0.9;
  const Dataset a = GenerateGaussianMixture(weak, 5);
  const Dataset b = GenerateGaussianMixture(strong, 5);
  const double gap_weak = ClassSpread(a, 0) / ClassSpread(a, 2);
  const double gap_strong = ClassSpread(b, 0) / ClassSpread(b, 2);
  EXPECT_GT(gap_strong, gap_weak);
}

TEST(ModeTightnessTest, DeterministicGivenSeed) {
  GaussianMixtureSpec spec = BaseSpec();
  spec.mode_tightness_exponent = 0.5;
  const Dataset a = GenerateGaussianMixture(spec, 7);
  const Dataset b = GenerateGaussianMixture(spec, 7);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.x.data()[i], b.x.data()[i]);
  }
}

}  // namespace
}  // namespace mcirbm::data
