#include "data/transforms.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/stats.h"

namespace mcirbm::data {
namespace {

TEST(StandardizeTest, ZeroMeanUnitVariance) {
  linalg::Matrix x{{1, 100}, {2, 200}, {3, 300}, {4, 400}};
  StandardizeInPlace(&x);
  const auto stats = linalg::ComputeColumnStats(x);
  for (int j = 0; j < 2; ++j) {
    EXPECT_NEAR(stats.mean[j], 0, 1e-12);
    EXPECT_NEAR(stats.stddev[j], 1, 1e-12);
  }
}

TEST(StandardizeTest, ConstantColumnCenteredOnly) {
  linalg::Matrix x{{5, 1}, {5, 2}};
  StandardizeInPlace(&x);
  EXPECT_DOUBLE_EQ(x(0, 0), 0);
  EXPECT_DOUBLE_EQ(x(1, 0), 0);
}

TEST(MinMaxScaleTest, MapsToUnitInterval) {
  linalg::Matrix x{{-10, 0}, {0, 5}, {10, 10}};
  MinMaxScaleInPlace(&x);
  EXPECT_DOUBLE_EQ(x(0, 0), 0);
  EXPECT_DOUBLE_EQ(x(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(x(2, 0), 1);
  EXPECT_DOUBLE_EQ(x(2, 1), 1);
}

TEST(MinMaxScaleTest, ConstantColumnMapsToHalf) {
  linalg::Matrix x{{3}, {3}};
  MinMaxScaleInPlace(&x);
  EXPECT_DOUBLE_EQ(x(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(x(1, 0), 0.5);
}

TEST(BinarizeTest, ThresholdSplitsValues) {
  linalg::Matrix x{{0.2, 0.5, 0.8}};
  BinarizeInPlace(&x, 0.5);
  EXPECT_DOUBLE_EQ(x(0, 0), 0);
  EXPECT_DOUBLE_EQ(x(0, 1), 1);  // >= threshold
  EXPECT_DOUBLE_EQ(x(0, 2), 1);
}

TEST(BinarizeAtColumnMeanTest, PerColumnThreshold) {
  linalg::Matrix x{{0, 100}, {10, 0}};
  BinarizeAtColumnMeanInPlace(&x);
  // Column 0 mean=5: 0->0, 10->1. Column 1 mean=50: 100->1, 0->0.
  EXPECT_DOUBLE_EQ(x(0, 0), 0);
  EXPECT_DOUBLE_EQ(x(1, 0), 1);
  EXPECT_DOUBLE_EQ(x(0, 1), 1);
  EXPECT_DOUBLE_EQ(x(1, 1), 0);
}

TEST(L2NormalizeTest, RowsHaveUnitNorm) {
  linalg::Matrix x{{3, 4}, {0, 2}};
  L2NormalizeRowsInPlace(&x);
  EXPECT_NEAR(std::hypot(x(0, 0), x(0, 1)), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(x(0, 0), 0.6);
  EXPECT_DOUBLE_EQ(x(1, 1), 1.0);
}

TEST(L2NormalizeTest, ZeroRowUnchanged) {
  linalg::Matrix x{{0, 0}};
  L2NormalizeRowsInPlace(&x);
  EXPECT_DOUBLE_EQ(x(0, 0), 0);
  EXPECT_DOUBLE_EQ(x(0, 1), 0);
}

TEST(TransformsTest, EmptyMatrixIsSafe) {
  linalg::Matrix x;
  StandardizeInPlace(&x);
  MinMaxScaleInPlace(&x);
  BinarizeAtColumnMeanInPlace(&x);
  L2NormalizeRowsInPlace(&x);
  EXPECT_TRUE(x.empty());
}

}  // namespace
}  // namespace mcirbm::data
