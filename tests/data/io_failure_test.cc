// Failure-injection tests for the dataset CSV loader: every malformed
// input must produce a clean Status, never a crash or a silently wrong
// dataset.
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/io.h"

namespace mcirbm::data {
namespace {

class IoFailureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/io_failure_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(IoFailureTest, EmptyFileFails) {
  WriteFile("");
  EXPECT_FALSE(LoadDatasetCsv(path_, "t").ok());
}

TEST_F(IoFailureTest, HeaderOnlyFails) {
  WriteFile("f0,f1,label\n");
  EXPECT_FALSE(LoadDatasetCsv(path_, "t").ok());
}

TEST_F(IoFailureTest, RaggedRowFails) {
  WriteFile("f0,f1,label\n1.0,2.0,0\n1.0,0\n");
  EXPECT_FALSE(LoadDatasetCsv(path_, "t").ok());
}

TEST_F(IoFailureTest, ExtraColumnRowFails) {
  WriteFile("f0,f1,label\n1.0,2.0,0\n1.0,2.0,3.0,0\n");
  EXPECT_FALSE(LoadDatasetCsv(path_, "t").ok());
}

TEST_F(IoFailureTest, NonNumericFeatureFails) {
  WriteFile("f0,f1,label\n1.0,banana,0\n");
  EXPECT_FALSE(LoadDatasetCsv(path_, "t").ok());
}

TEST_F(IoFailureTest, BlankLineInMiddleFails) {
  WriteFile("f0,f1,label\n1.0,2.0,0\n\n3.0,4.0,1\n");
  const auto result = LoadDatasetCsv(path_, "t");
  // Either a clean parse error or the blank line is skipped — but never
  // a half-read dataset with mismatched rows/labels.
  if (result.ok()) {
    EXPECT_EQ(result.value().x.rows(), result.value().labels.size());
  }
}

TEST_F(IoFailureTest, TrailingNewlineAccepted) {
  WriteFile("f0,f1,label\n1.0,2.0,0\n3.0,4.0,1\n");
  const auto result = LoadDatasetCsv(path_, "t");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().x.rows(), 2u);
}

TEST_F(IoFailureTest, ScientificNotationAndNegativesRoundTrip) {
  WriteFile("f0,f1,label\n-1.5e-8,2.25e6,0\n3.125,-4.75,1\n");
  const auto result = LoadDatasetCsv(path_, "t");
  ASSERT_TRUE(result.ok());
  const Dataset& ds = result.value();
  EXPECT_DOUBLE_EQ(ds.x(0, 0), -1.5e-8);
  EXPECT_DOUBLE_EQ(ds.x(0, 1), 2.25e6);
  EXPECT_DOUBLE_EQ(ds.x(1, 1), -4.75);
}

TEST_F(IoFailureTest, FractionalLabelFails) {
  WriteFile("f0,f1,label\n1.0,2.0,0.5\n");
  EXPECT_FALSE(LoadDatasetCsv(path_, "t").ok());
}

TEST_F(IoFailureTest, SaveToUnwritablePathFails) {
  Dataset ds;
  ds.name = "t";
  ds.x = linalg::Matrix(1, 2);
  ds.labels = {0};
  ds.num_classes = 1;
  EXPECT_FALSE(
      SaveDatasetCsv(ds, "/nonexistent-dir-xyz/file.csv").ok());
}

}  // namespace
}  // namespace mcirbm::data
