// The streaming DataSource layer: chunked iteration, random access,
// format round-trips (csv <-> mcirbm-data binary), the libsvm loader, and
// the string-spec loader registry. The round-trip tests compare *bytes*,
// not values — the binary artifact and the CSV writer's setprecision(17)
// make csv -> binary -> csv reproduce the original file exactly.
#include "data/source.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/binary_io.h"
#include "data/dataset.h"
#include "data/io.h"
#include "data/loaders.h"
#include "data/paper_datasets.h"
#include "data/synthetic.h"

namespace mcirbm::data {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Dataset SmallDataset() {
  GaussianMixtureSpec spec;
  spec.name = "src";
  spec.num_classes = 3;
  spec.num_instances = 23;  // not a multiple of any chunk size below
  spec.num_features = 4;
  return GenerateGaussianMixture(spec, 17);
}

class DataSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string base = ::testing::TempDir() + "/source_test";
    csv_path_ = base + ".csv";
    bin_path_ = base + ".bin";
    csv2_path_ = base + "_rt.csv";
    libsvm_path_ = base + ".libsvm";
  }
  void TearDown() override {
    for (const auto& p : {csv_path_, bin_path_, csv2_path_, libsvm_path_}) {
      std::remove(p.c_str());
    }
  }
  std::string csv_path_, bin_path_, csv2_path_, libsvm_path_;
};

void ExpectSameDataset(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_instances(), b.num_instances());
  ASSERT_EQ(a.num_features(), b.num_features());
  EXPECT_EQ(a.num_classes, b.num_classes);
  EXPECT_EQ(a.labels, b.labels);
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    ASSERT_EQ(a.x.data()[i], b.x.data()[i]) << "feature " << i;
  }
}

TEST_F(DataSourceTest, CsvBinaryCsvRoundTripIsByteIdentical) {
  const Dataset original = SmallDataset();
  ASSERT_TRUE(SaveDatasetCsv(original, csv_path_).ok());

  // csv -> binary (streamed in 7-row chunks) -> csv.
  DataSourceConfig config;
  config.max_resident_rows = 7;
  auto csv_source = OpenCsvSource(csv_path_, "src", config);
  ASSERT_TRUE(csv_source.ok()) << csv_source.status().ToString();
  ASSERT_TRUE(
      ConvertSourceToBinary(*csv_source.value(), bin_path_).ok());
  auto restored = LoadDatasetBinary(bin_path_, "src");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_TRUE(SaveDatasetCsv(restored.value(), csv2_path_).ok());

  EXPECT_EQ(ReadFileBytes(csv_path_), ReadFileBytes(csv2_path_));
}

TEST_F(DataSourceTest, StreamedConvertMatchesMaterializedSave) {
  const Dataset original = SmallDataset();
  ASSERT_TRUE(SaveDatasetCsv(original, csv_path_).ok());
  DataSourceConfig config;
  config.max_resident_rows = 5;
  auto source = OpenCsvSource(csv_path_, "src", config);
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(ConvertSourceToBinary(*source.value(), bin_path_).ok());

  const std::string other = bin_path_ + ".whole";
  auto materialized = source.value()->Materialize();
  ASSERT_TRUE(materialized.ok());
  ASSERT_TRUE(SaveDatasetBinary(materialized.value(), other).ok());
  EXPECT_EQ(ReadFileBytes(bin_path_), ReadFileBytes(other));
  std::remove(other.c_str());
}

TEST_F(DataSourceTest, MmapLoaderMatchesCsvLoader) {
  const Dataset original = SmallDataset();
  ASSERT_TRUE(SaveDatasetCsv(original, csv_path_).ok());
  ASSERT_TRUE(SaveDatasetBinary(original, bin_path_).ok());

  auto from_csv = LoadDatasetCsv(csv_path_, "src");
  ASSERT_TRUE(from_csv.ok());
  auto from_bin = LoadDatasetBinary(bin_path_, "src");
  ASSERT_TRUE(from_bin.ok());
  ExpectSameDataset(from_csv.value(), from_bin.value());
  // The binary path is lossless, so it reproduces the original bits too.
  ExpectSameDataset(original, from_bin.value());
}

TEST_F(DataSourceTest, ChunkedIterationMatchesMaterialize) {
  const Dataset original = SmallDataset();
  ASSERT_TRUE(SaveDatasetBinary(original, bin_path_).ok());
  for (const std::size_t chunk_rows : {std::size_t{1}, std::size_t{7},
                                       std::size_t{23}, std::size_t{100}}) {
    DataSourceConfig config;
    config.max_resident_rows = chunk_rows;
    auto source = OpenMmapSource(bin_path_, "bin", config);
    ASSERT_TRUE(source.ok());
    std::vector<double> streamed_x;
    std::vector<int> streamed_labels;
    std::size_t next_row = 0;
    const Status status =
        source.value()->ForEachChunk([&](const ChunkSpec& chunk) {
          EXPECT_EQ(chunk.row_begin, next_row);
          EXPECT_LE(chunk.rows, chunk_rows);
          next_row += chunk.rows;
          streamed_x.insert(streamed_x.end(), chunk.x,
                            chunk.x + chunk.rows * chunk.cols);
          streamed_labels.insert(streamed_labels.end(), chunk.labels,
                                 chunk.labels + chunk.rows);
          return Status::Ok();
        });
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(next_row, original.num_instances());
    EXPECT_EQ(streamed_labels, original.labels);
    ASSERT_EQ(streamed_x.size(), original.x.size());
    for (std::size_t i = 0; i < streamed_x.size(); ++i) {
      ASSERT_EQ(streamed_x[i], original.x.data()[i]);
    }
  }
}

TEST_F(DataSourceTest, MmapGatherRowsMatchesDirectRows) {
  const Dataset original = SmallDataset();
  ASSERT_TRUE(SaveDatasetBinary(original, bin_path_).ok());
  auto source = OpenMmapSource(bin_path_, "bin", {});
  ASSERT_TRUE(source.ok());
  EXPECT_TRUE(source.value()->SupportsRandomAccess());

  const std::vector<std::size_t> indices = {22, 0, 7, 7, 13};
  linalg::Matrix gathered;
  std::vector<int> labels;
  ASSERT_TRUE(
      source.value()->GatherRows(indices, &gathered, &labels).ok());
  ASSERT_EQ(gathered.rows(), indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(labels[i], original.labels[indices[i]]);
    for (std::size_t j = 0; j < original.num_features(); ++j) {
      ASSERT_EQ(gathered(i, j), original.x(indices[i], j));
    }
  }

  linalg::Matrix out;
  const Status bad = source.value()->GatherRows({23}, &out, nullptr);
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
}

TEST_F(DataSourceTest, SequentialCsvSourceRejectsGatherRows) {
  ASSERT_TRUE(SaveDatasetCsv(SmallDataset(), csv_path_).ok());
  auto source = OpenCsvSource(csv_path_, "src", {});
  ASSERT_TRUE(source.ok());
  EXPECT_FALSE(source.value()->SupportsRandomAccess());
  linalg::Matrix out;
  const Status status = source.value()->GatherRows({0}, &out, nullptr);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("dataset convert"), std::string::npos);
}

TEST_F(DataSourceTest, InMemorySourceIsZeroCopyAndRandomAccess) {
  const Dataset original = SmallDataset();
  auto source = MakeInMemorySource(original, {});
  ASSERT_TRUE(source.ok());
  EXPECT_TRUE(source.value()->SupportsRandomAccess());
  ASSERT_NE(source.value()->DenseView(), nullptr);
  // Zero-copy: the chunk points into the source's own dataset.
  const Status status =
      source.value()->ForEachChunk([&](const ChunkSpec& chunk) {
        EXPECT_EQ(chunk.x, source.value()->DenseView()->x.data());
        EXPECT_EQ(chunk.rows, original.num_instances());
        return Status::Ok();
      });
  ASSERT_TRUE(status.ok());
  auto materialized = source.value()->Materialize();
  ASSERT_TRUE(materialized.ok());
  ExpectSameDataset(original, materialized.value());
}

TEST_F(DataSourceTest, InMemorySourceRejectsInvalidDataset) {
  Dataset bad = SmallDataset();
  bad.labels.pop_back();
  auto source = MakeInMemorySource(std::move(bad), {});
  EXPECT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
}

// --- CSV hardening -------------------------------------------------------

TEST_F(DataSourceTest, CsvAcceptsCrlfQuotedHeaderAndTrailingBlank) {
  std::ofstream out(csv_path_, std::ios::binary);
  out << "\"f0\",\"f1\",\"label\"\r\n"
      << "1.5,2.5,0\r\n"
      << "3.5,4.5,1\r\n"
      << "\r\n";
  out.close();
  auto loaded = LoadDatasetCsv(csv_path_, "crlf");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_instances(), 2u);
  EXPECT_EQ(loaded.value().num_features(), 2u);
  EXPECT_EQ(loaded.value().labels, (std::vector<int>{0, 1}));
  EXPECT_EQ(loaded.value().x(1, 0), 3.5);
}

TEST_F(DataSourceTest, CsvMissingLabelColumnNamesFileAndLine) {
  std::ofstream out(csv_path_);
  out << "f0\n1.0\n2.0\n";
  out.close();
  auto loaded = LoadDatasetCsv(csv_path_, "narrow");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find(csv_path_ + ":2"),
            std::string::npos)
      << loaded.status().message();
  // The streaming source rejects it identically.
  auto source = OpenCsvSource(csv_path_, "narrow", {});
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().message().find(csv_path_ + ":2"),
            std::string::npos);
}

TEST_F(DataSourceTest, CsvSourceRejectsNonFiniteFeature) {
  std::ofstream out(csv_path_);
  out << "f0,f1,label\n1.0,nan,0\n";
  out.close();
  auto source = OpenCsvSource(csv_path_, "nan", {});
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kParseError);
  EXPECT_NE(source.status().message().find(csv_path_ + ":2"),
            std::string::npos);
}

TEST_F(DataSourceTest, CsvNegativeLabelFails) {
  std::ofstream out(csv_path_);
  out << "f0,label\n1.0,-2\n";
  out.close();
  auto loaded = LoadDatasetCsv(csv_path_, "neg");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

TEST_F(DataSourceTest, EmptyCsvFails) {
  std::ofstream out(csv_path_);
  out << "f0,label\n";
  out.close();
  auto loaded = LoadDatasetCsv(csv_path_, "empty");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("no data rows"),
            std::string::npos);
}

// --- Binary corruption ---------------------------------------------------

TEST_F(DataSourceTest, TruncatedBinaryFails) {
  const Dataset original = SmallDataset();
  ASSERT_TRUE(SaveDatasetBinary(original, bin_path_).ok());
  const std::string bytes = ReadFileBytes(bin_path_);
  std::ofstream out(bin_path_, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(),
            static_cast<std::streamsize>(bytes.size() - 12));
  out.close();
  auto source = OpenMmapSource(bin_path_, "bin", {});
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kParseError);
}

TEST_F(DataSourceTest, BadMagicFails) {
  std::ofstream out(bin_path_, std::ios::binary);
  out << "not-a-mcirbm-data-file-at-all------------";
  out.close();
  auto source = OpenMmapSource(bin_path_, "bin", {});
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().code(), StatusCode::kParseError);
  EXPECT_NE(source.status().message().find("magic"), std::string::npos);
}

// --- libsvm --------------------------------------------------------------

TEST_F(DataSourceTest, LibsvmDensifiesAndMapsLabels) {
  std::ofstream out(libsvm_path_);
  out << "# comment line\n"
      << "+1 1:0.5 3:1.25\r\n"
      << "-1 2:2.0\n"
      << "\n"
      << "-1 1:4.0 2:0.25 3:-1.5\n";
  out.close();
  auto loaded = LoadDatasetLibsvm(libsvm_path_, "svm");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& ds = loaded.value();
  EXPECT_EQ(ds.num_instances(), 3u);
  EXPECT_EQ(ds.num_features(), 3u);
  EXPECT_EQ(ds.num_classes, 2);
  // Ascending label order: -1 -> 0, +1 -> 1.
  EXPECT_EQ(ds.labels, (std::vector<int>{1, 0, 0}));
  EXPECT_EQ(ds.x(0, 0), 0.5);
  EXPECT_EQ(ds.x(0, 1), 0.0);  // omitted -> zero
  EXPECT_EQ(ds.x(0, 2), 1.25);
  EXPECT_EQ(ds.x(1, 1), 2.0);
  EXPECT_EQ(ds.x(2, 2), -1.5);
}

TEST_F(DataSourceTest, LibsvmRejectsZeroBasedIndex) {
  std::ofstream out(libsvm_path_);
  out << "1 0:1.0\n";
  out.close();
  auto loaded = LoadDatasetLibsvm(libsvm_path_, "svm");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  EXPECT_NE(loaded.status().message().find(libsvm_path_ + ":1"),
            std::string::npos);
}

TEST_F(DataSourceTest, LibsvmRejectsMalformedToken) {
  std::ofstream out(libsvm_path_);
  out << "1 1:0.5\n0 oops\n";
  out.close();
  auto loaded = LoadDatasetLibsvm(libsvm_path_, "svm");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(libsvm_path_ + ":2"),
            std::string::npos);
}

// --- loader registry -----------------------------------------------------

TEST_F(DataSourceTest, RegistryInfersSchemesFromPaths) {
  const Dataset original = SmallDataset();
  ASSERT_TRUE(SaveDatasetCsv(original, csv_path_).ok());
  ASSERT_TRUE(SaveDatasetBinary(original, bin_path_).ok());

  for (const std::string& spec :
       {csv_path_, "csv:" + csv_path_, bin_path_, "bin:" + bin_path_}) {
    auto loaded = LoadDataset(spec);
    ASSERT_TRUE(loaded.ok()) << spec << ": " << loaded.status().ToString();
    ExpectSameDataset(original, loaded.value());
  }
}

TEST_F(DataSourceTest, RegistrySniffsBinaryMagicWithoutExtension) {
  const Dataset original = SmallDataset();
  const std::string extless = ::testing::TempDir() + "/source_test_noext";
  ASSERT_TRUE(SaveDatasetBinary(original, extless).ok());
  auto loaded = LoadDataset(extless);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDataset(original, loaded.value());
  std::remove(extless.c_str());
}

TEST_F(DataSourceTest, RegistrySynthSpecMatchesGenerator) {
  DataSourceConfig config;
  config.synth_seed = 7;
  auto loaded = LoadDataset("synth:msra:0", config);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDataset(GenerateMsraLike(0, 7), loaded.value());
  // An explicit spec seed beats the config seed.
  auto seeded = LoadDataset("synth:uci:1:9", config);
  ASSERT_TRUE(seeded.ok());
  ExpectSameDataset(GenerateUciLike(1, 9), seeded.value());
}

TEST_F(DataSourceTest, RegistryRejectsBadSpecs) {
  EXPECT_FALSE(OpenDataSource("synth:msra:9999").ok());
  EXPECT_FALSE(OpenDataSource("synth:nope:0").ok());
  EXPECT_FALSE(OpenDataSource("/no/such/file.csv").ok());
}

// --- determinism across sources ------------------------------------------

TEST_F(DataSourceTest, StratifiedSubsampleIsIdenticalAcrossSources) {
  const Dataset original = SmallDataset();
  ASSERT_TRUE(SaveDatasetCsv(original, csv_path_).ok());
  ASSERT_TRUE(SaveDatasetBinary(original, bin_path_).ok());

  DataSourceConfig chunked;
  chunked.max_resident_rows = 5;
  auto csv_source = OpenCsvSource(csv_path_, "src", chunked);
  ASSERT_TRUE(csv_source.ok());
  auto bin_source = OpenMmapSource(bin_path_, "src", chunked);
  ASSERT_TRUE(bin_source.ok());

  auto from_csv = csv_source.value()->Materialize();
  auto from_bin = bin_source.value()->Materialize();
  ASSERT_TRUE(from_csv.ok());
  ASSERT_TRUE(from_bin.ok());
  const Dataset a = StratifiedSubsample(from_csv.value(), 10, 99);
  const Dataset b = StratifiedSubsample(from_bin.value(), 10, 99);
  const Dataset c = StratifiedSubsample(original, 10, 99);
  ExpectSameDataset(a, b);
  ExpectSameDataset(a, c);
}

}  // namespace
}  // namespace mcirbm::data
