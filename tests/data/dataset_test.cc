#include "data/dataset.h"

#include <gtest/gtest.h>

namespace mcirbm::data {
namespace {

Dataset MakeToy() {
  Dataset d;
  d.name = "toy";
  d.x = linalg::Matrix{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}};
  d.labels = {0, 0, 0, 1, 1, 1};
  d.num_classes = 2;
  return d;
}

TEST(DatasetTest, ValidDatasetPassesCheck) { MakeToy().CheckValid(); }

TEST(DatasetDeathTest, LabelCountMismatchAborts) {
  Dataset d = MakeToy();
  d.labels.pop_back();
  EXPECT_DEATH(d.CheckValid(), "label count mismatch");
}

TEST(DatasetDeathTest, OutOfRangeLabelAborts) {
  Dataset d = MakeToy();
  d.labels[0] = 2;
  EXPECT_DEATH(d.CheckValid(), "out of range");
}

TEST(DatasetTest, SubsetKeepsLabelsAligned) {
  Dataset d = MakeToy();
  Dataset s = d.Subset({5, 0, 3});
  ASSERT_EQ(s.num_instances(), 3u);
  EXPECT_EQ(s.labels[0], 1);
  EXPECT_EQ(s.labels[1], 0);
  EXPECT_EQ(s.labels[2], 1);
  EXPECT_DOUBLE_EQ(s.x(0, 0), 5);
}

TEST(DatasetTest, ClassCounts) {
  Dataset d = MakeToy();
  d.labels = {0, 0, 1, 1, 1, 0};
  const auto counts = d.ClassCounts();
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 3);
}

TEST(StratifiedSubsampleTest, NoOpWhenSmallEnough) {
  Dataset d = MakeToy();
  Dataset s = StratifiedSubsample(d, 10, 1);
  EXPECT_EQ(s.num_instances(), d.num_instances());
}

TEST(StratifiedSubsampleTest, ReducesToApproximateTarget) {
  Dataset d;
  d.name = "big";
  d.num_classes = 2;
  d.x.Resize(100, 2);
  d.labels.resize(100);
  for (int i = 0; i < 100; ++i) d.labels[i] = i < 80 ? 0 : 1;
  Dataset s = StratifiedSubsample(d, 50, 1);
  EXPECT_LE(s.num_instances(), 52u);
  EXPECT_GE(s.num_instances(), 48u);
  // Both classes survive with roughly original proportions.
  const auto counts = s.ClassCounts();
  EXPECT_NEAR(static_cast<double>(counts[0]) / s.num_instances(), 0.8,
              0.1);
  EXPECT_GT(counts[1], 0);
}

TEST(StratifiedSubsampleTest, DeterministicGivenSeed) {
  Dataset d;
  d.num_classes = 2;
  d.x.Resize(60, 1);
  for (int i = 0; i < 60; ++i) d.x(i, 0) = i;
  d.labels.assign(60, 0);
  for (int i = 30; i < 60; ++i) d.labels[i] = 1;
  Dataset a = StratifiedSubsample(d, 20, 5);
  Dataset b = StratifiedSubsample(d, 20, 5);
  ASSERT_EQ(a.num_instances(), b.num_instances());
  EXPECT_TRUE(a.x.AllClose(b.x, 0));
}

}  // namespace
}  // namespace mcirbm::data
