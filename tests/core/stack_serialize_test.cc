#include "core/stack_serialize.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/transforms.h"

namespace mcirbm::core {
namespace {

class StackSerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/stack_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
  }
  void TearDown() override {
    std::remove(path_.c_str());
    for (int l = 0; l < 4; ++l) {
      std::remove((path_ + ".layer" + std::to_string(l)).c_str());
    }
  }
  std::string path_;
};

data::Dataset SmallMixture(std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "serialize";
  spec.num_classes = 2;
  spec.num_instances = 80;
  spec.num_features = 10;
  spec.separation = 3.0;
  data::Dataset ds = data::GenerateGaussianMixture(spec, seed);
  data::StandardizeInPlace(&ds.x);
  return ds;
}

StackedEncoder MakeTrainedStack(const linalg::Matrix& x, bool with_sls) {
  StackedLayerConfig bottom;
  bottom.model = with_sls ? ModelKind::kSlsGrbm : ModelKind::kGrbm;
  bottom.rbm.num_hidden = 8;
  bottom.rbm.epochs = 5;
  bottom.rbm.learning_rate = 1e-3;
  bottom.supervision.num_clusters = 2;

  StackedLayerConfig top;
  top.model = ModelKind::kRbm;
  top.rbm.num_hidden = 4;
  top.rbm.epochs = 5;
  top.rbm.learning_rate = 0.05;

  StackedEncoder stack({bottom, top});
  stack.Train(x, 5);
  return stack;
}

TEST_F(StackSerializeTest, RoundTripPreservesTransform) {
  const data::Dataset ds = SmallMixture(3);
  StackedEncoder stack = MakeTrainedStack(ds.x, /*with_sls=*/false);
  ASSERT_TRUE(SaveStack(stack, path_).ok());

  LoadedStack loaded;
  ASSERT_TRUE(LoadStack(path_, &loaded).ok());
  ASSERT_EQ(loaded.num_layers(), 2u);
  EXPECT_TRUE(
      loaded.Transform(ds.x).AllClose(stack.Transform(ds.x), 1e-12));
  EXPECT_TRUE(
      loaded.Transform(ds.x, 1).AllClose(stack.Transform(ds.x, 1), 1e-12));
}

TEST_F(StackSerializeTest, SlsLayersLoadAsInferenceEquivalentPlainModels) {
  const data::Dataset ds = SmallMixture(5);
  StackedEncoder stack = MakeTrainedStack(ds.x, /*with_sls=*/true);
  ASSERT_TRUE(SaveStack(stack, path_).ok());

  LoadedStack loaded;
  ASSERT_TRUE(LoadStack(path_, &loaded).ok());
  // The loaded bottom layer is a plain GRBM, but Transform must agree
  // exactly (supervision affects training only).
  EXPECT_EQ(loaded.layer(0).name(), "grbm");
  EXPECT_TRUE(
      loaded.Transform(ds.x).AllClose(stack.Transform(ds.x), 1e-12));
}

TEST_F(StackSerializeTest, UntrainedStackRejected) {
  StackedLayerConfig layer;
  layer.model = ModelKind::kGrbm;
  layer.rbm.num_hidden = 4;
  StackedEncoder stack({layer});
  const Status status = SaveStack(stack, path_);
  EXPECT_FALSE(status.ok());
}

TEST_F(StackSerializeTest, MissingManifestIsIoError) {
  LoadedStack loaded;
  const Status status = LoadStack(path_ + ".does-not-exist", &loaded);
  EXPECT_FALSE(status.ok());
}

TEST_F(StackSerializeTest, CorruptMagicRejected) {
  {
    std::ofstream out(path_);
    out << "not-a-stack v9\n1\n";
  }
  LoadedStack loaded;
  const Status status = LoadStack(path_, &loaded);
  EXPECT_FALSE(status.ok());
}

TEST_F(StackSerializeTest, MissingLayerFileRejected) {
  const data::Dataset ds = SmallMixture(7);
  StackedEncoder stack = MakeTrainedStack(ds.x, /*with_sls=*/false);
  ASSERT_TRUE(SaveStack(stack, path_).ok());
  std::remove((path_ + ".layer1").c_str());
  LoadedStack loaded;
  EXPECT_FALSE(LoadStack(path_, &loaded).ok());
}

TEST_F(StackSerializeTest, TruncatedManifestRejected) {
  const data::Dataset ds = SmallMixture(9);
  StackedEncoder stack = MakeTrainedStack(ds.x, /*with_sls=*/false);
  ASSERT_TRUE(SaveStack(stack, path_).ok());
  {
    // Rewrite the manifest claiming 3 layers but listing 2.
    std::ifstream in(path_);
    std::string magic;
    std::getline(in, magic);
    std::string rest((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(path_);
    out << magic << "\n3\n" << rest.substr(rest.find('\n') + 1);
  }
  LoadedStack loaded;
  EXPECT_FALSE(LoadStack(path_, &loaded).ok());
}

}  // namespace
}  // namespace mcirbm::core
