// Tests for the trust-region cap on the supervision gradient
// (SlsConfig::max_grad_norm). The cap is what lets one family-wide
// supervision_scale stay stable across datasets whose consensus coverage
// differs by an order of magnitude (see DESIGN.md, calibration).
#include <cmath>
#include <gtest/gtest.h>

#include "core/sls_models.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "rbm/gradients.h"
#include "rng/rng.h"

namespace mcirbm::core {
namespace {

struct Fixture {
  linalg::Matrix x;
  voting::LocalSupervision supervision;
  linalg::Matrix w;
  std::vector<double> b;
  linalg::Matrix h, v_recon, h_recon;
  std::vector<std::size_t> indices;
};

// Builds a deterministic batch context over a small mixture with an
// oracle supervision, plus random-but-fixed parameters.
Fixture MakeFixture(int n = 60, int d = 8, int nh = 6) {
  data::GaussianMixtureSpec spec;
  spec.name = "cap";
  spec.num_classes = 3;
  spec.num_instances = n;
  spec.num_features = d;
  spec.separation = 3.0;
  data::Dataset ds = data::GenerateGaussianMixture(spec, 11);
  data::StandardizeInPlace(&ds.x);

  Fixture f;
  f.x = ds.x;
  f.supervision.num_clusters = 3;
  f.supervision.cluster_of = ds.labels;

  rng::Rng rng(17);
  f.w.Resize(d, nh);
  for (std::size_t i = 0; i < f.w.size(); ++i) {
    f.w.data()[i] = rng.Gaussian(0.0, 0.1);
  }
  f.b.assign(nh, 0.0);

  // Hidden probabilities and a crude "reconstruction" (shifted data) are
  // enough: the fuser only needs consistently shaped views.
  f.h = linalg::Matrix(f.x.rows(), nh);
  for (std::size_t r = 0; r < f.x.rows(); ++r) {
    for (int j = 0; j < nh; ++j) {
      double acc = f.b[j];
      for (int i = 0; i < d; ++i) acc += f.x(r, i) * f.w(i, j);
      f.h(r, j) = 1.0 / (1.0 + std::exp(-acc));
    }
  }
  f.v_recon = f.x;
  for (std::size_t i = 0; i < f.v_recon.size(); ++i) {
    f.v_recon.data()[i] *= 0.9;
  }
  f.h_recon = f.h;
  f.indices.resize(f.x.rows());
  for (std::size_t i = 0; i < f.x.rows(); ++i) f.indices[i] = i;
  return f;
}

double BufferNorm(const rbm::GradientBuffers& g) {
  double sq = 0;
  for (std::size_t i = 0; i < g.dw.size(); ++i) {
    sq += g.dw.data()[i] * g.dw.data()[i];
  }
  for (const double v : g.db) sq += v * v;
  return std::sqrt(sq);
}

rbm::GradientBuffers RunFuser(const Fixture& f, double scale, double cap) {
  SlsConfig cfg;
  cfg.eta = 0.5;
  cfg.supervision_scale = scale;
  cfg.max_grad_norm = cap;
  SlsSupervisionFuser fuser(cfg, f.supervision);
  rbm::GradientBuffers grads(f.w.rows(), f.w.cols());
  const rbm::BatchContext ctx{f.indices, f.x, f.h, f.v_recon, f.h_recon};
  fuser.Accumulate(ctx, f.w, f.b, &grads);
  return grads;
}

TEST(SlsCapTest, DisabledCapLeavesGradientUntouched) {
  const Fixture f = MakeFixture();
  const auto uncapped = RunFuser(f, 1e6, 0.0);
  const auto huge_cap = RunFuser(f, 1e6, 1e18);
  for (std::size_t i = 0; i < uncapped.dw.size(); ++i) {
    EXPECT_DOUBLE_EQ(uncapped.dw.data()[i], huge_cap.dw.data()[i]);
  }
}

TEST(SlsCapTest, CapBoundsTheContributionNorm) {
  const Fixture f = MakeFixture();
  for (const double cap : {1e-3, 1e-1, 1.0, 10.0}) {
    const auto grads = RunFuser(f, 1e6, cap);
    EXPECT_LE(BufferNorm(grads), cap * (1.0 + 1e-9)) << "cap=" << cap;
  }
}

TEST(SlsCapTest, CapPreservesGradientDirection) {
  const Fixture f = MakeFixture();
  const auto uncapped = RunFuser(f, 1e6, 0.0);
  const auto capped = RunFuser(f, 1e6, 1.0);
  const double ratio = BufferNorm(uncapped) / BufferNorm(capped);
  ASSERT_GT(ratio, 1.0);  // the cap actually engaged
  for (std::size_t i = 0; i < uncapped.dw.size(); ++i) {
    EXPECT_NEAR(uncapped.dw.data()[i], ratio * capped.dw.data()[i],
                1e-6 * std::abs(uncapped.dw.data()[i]) + 1e-12);
  }
}

TEST(SlsCapTest, LooseCapIsInactive) {
  const Fixture f = MakeFixture();
  const auto uncapped = RunFuser(f, 10.0, 0.0);
  const double norm = BufferNorm(uncapped);
  ASSERT_GT(norm, 0.0);
  const auto capped = RunFuser(f, 10.0, norm * 2.0);
  for (std::size_t i = 0; i < uncapped.dw.size(); ++i) {
    EXPECT_DOUBLE_EQ(uncapped.dw.data()[i], capped.dw.data()[i]);
  }
}

TEST(SlsCapTest, TrainingWithHugeScaleStaysFiniteUnderCap) {
  const Fixture f = MakeFixture(90, 10, 8);
  rbm::RbmConfig rc;
  rc.num_visible = 10;
  rc.num_hidden = 8;
  rc.learning_rate = 1e-2;
  rc.epochs = 30;
  rc.seed = 5;
  SlsConfig sls;
  sls.eta = 0.5;
  sls.supervision_scale = 1e8;  // would diverge uncapped at this lr
  sls.max_grad_norm = 50.0;
  SlsRbm model(rc, sls, f.supervision);
  linalg::Matrix x01 = f.x;
  data::MinMaxScaleInPlace(&x01);
  model.Train(x01);
  const linalg::Matrix h = model.HiddenFeatures(x01);
  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_TRUE(std::isfinite(h.data()[i]));
  }
}

}  // namespace
}  // namespace mcirbm::core
