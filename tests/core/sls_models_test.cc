#include "core/sls_models.h"

#include <gtest/gtest.h>

#include "core/sls_gradient.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "linalg/ops.h"

namespace mcirbm::core {
namespace {

// Structured data with a trustworthy supervision: the true labels of a
// well-separated mixture (stand-in for a high-precision unanimous vote).
struct Scenario {
  linalg::Matrix x;
  voting::LocalSupervision supervision;
  std::vector<int> labels;
};

Scenario MakeScenario(int n, int d, int k, double separation,
                      std::uint64_t seed, bool binary) {
  data::GaussianMixtureSpec spec;
  spec.name = "scenario";
  spec.num_classes = k;
  spec.num_instances = n;
  spec.num_features = d;
  spec.separation = separation;
  data::Dataset ds = data::GenerateGaussianMixture(spec, seed);
  Scenario s;
  if (binary) {
    data::MinMaxScaleInPlace(&ds.x);
  } else {
    data::StandardizeInPlace(&ds.x);
  }
  s.x = ds.x;
  s.labels = ds.labels;
  s.supervision.num_clusters = k;
  s.supervision.cluster_of = ds.labels;
  // Blank every third instance to exercise partial coverage.
  for (std::size_t i = 0; i < s.supervision.cluster_of.size(); i += 3) {
    s.supervision.cluster_of[i] = -1;
  }
  return s;
}

rbm::RbmConfig BaseConfig(int nv, int nh) {
  rbm::RbmConfig cfg;
  cfg.num_visible = nv;
  cfg.num_hidden = nh;
  cfg.learning_rate = 1e-3;
  cfg.epochs = 25;
  cfg.seed = 9;
  return cfg;
}

double MeanSlsObjective(const rbm::RbmBase& model, const linalg::Matrix& x,
                        const voting::LocalSupervision& sup) {
  std::vector<std::size_t> all(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) all[i] = i;
  const SupervisionBatch sb = BuildSupervisionBatch(sup, all);
  const linalg::Matrix h = model.HiddenFeatures(x);
  return SlsObjective(x, h, sb, model.weights(), model.hidden_bias(),
                      SlsGradientOptions{});
}

TEST(SlsRbmTest, TrainingReducesConstrictDisperseObjective) {
  const Scenario s = MakeScenario(60, 12, 2, 3.0, 1, /*binary=*/true);
  SlsConfig sls;
  sls.eta = 0.5;
  sls.supervision_scale = 100.0;
  SlsRbm model(BaseConfig(12, 8), sls, s.supervision);
  const double before = MeanSlsObjective(model, s.x, s.supervision);
  model.Train(s.x);
  const double after = MeanSlsObjective(model, s.x, s.supervision);
  EXPECT_LT(after, before);
}

TEST(SlsGrbmTest, TrainingReducesConstrictDisperseObjective) {
  const Scenario s = MakeScenario(60, 12, 3, 3.0, 2, /*binary=*/false);
  SlsConfig sls;
  sls.eta = 0.4;
  sls.supervision_scale = 100.0;
  SlsGrbm model(BaseConfig(12, 8), sls, s.supervision);
  const double before = MeanSlsObjective(model, s.x, s.supervision);
  model.Train(s.x);
  const double after = MeanSlsObjective(model, s.x, s.supervision);
  EXPECT_LT(after, before);
}

TEST(SlsModelsTest, ConstrictionImprovesWithinBetweenRatio) {
  // The supervision should give the sls model a smaller within-class /
  // between-class hidden-distance ratio than an identically trained plain
  // GRBM. (Absolute spreads grow as weights grow, so the ratio is the
  // meaningful quantity.)
  const Scenario s = MakeScenario(80, 10, 2, 2.5, 3, /*binary=*/false);
  SlsConfig sls;
  sls.eta = 0.4;
  sls.supervision_scale = 1000.0;

  auto ratio = [&](const linalg::Matrix& h) {
    double within = 0, between = 0;
    int nw = 0, nb = 0;
    for (std::size_t i = 0; i < h.rows(); ++i) {
      for (std::size_t j = i + 1; j < h.rows(); ++j) {
        const double d = linalg::SquaredDistance(h.Row(i), h.Row(j));
        if (s.labels[i] == s.labels[j]) {
          within += d;
          ++nw;
        } else {
          between += d;
          ++nb;
        }
      }
    }
    return (within / nw) / std::max(between / nb, 1e-12);
  };

  SlsGrbm sls_model(BaseConfig(10, 6), sls, s.supervision);
  sls_model.Train(s.x);
  rbm::Grbm plain_model(BaseConfig(10, 6));
  plain_model.Train(s.x);
  EXPECT_LT(ratio(sls_model.HiddenFeatures(s.x)),
            ratio(plain_model.HiddenFeatures(s.x)));
}

TEST(SlsModelsTest, NamesIdentifyVariants) {
  const Scenario s = MakeScenario(20, 6, 2, 3.0, 4, true);
  SlsConfig sls;
  SlsRbm r(BaseConfig(6, 4), sls, s.supervision);
  SlsGrbm g(BaseConfig(6, 4), sls, s.supervision);
  EXPECT_EQ(r.name(), "sls-rbm");
  EXPECT_EQ(g.name(), "sls-grbm");
}

TEST(SlsModelsTest, FastAndNaiveGradientsTrainIdentically) {
  const Scenario s = MakeScenario(24, 8, 2, 3.0, 5, true);
  SlsConfig fast_cfg, naive_cfg;
  fast_cfg.use_fast_gradient = true;
  naive_cfg.use_fast_gradient = false;
  rbm::RbmConfig base = BaseConfig(8, 5);
  base.epochs = 5;
  SlsRbm fast(base, fast_cfg, s.supervision);
  SlsRbm naive(base, naive_cfg, s.supervision);
  fast.Train(s.x);
  naive.Train(s.x);
  EXPECT_TRUE(fast.weights().AllClose(naive.weights(), 1e-9));
}

TEST(SlsModelsTest, ZeroScaleMatchesPlainModelWithEtaCd) {
  // With supervision_scale = 0 the only difference from a plain RBM is the
  // η scaling of the CD term.
  const Scenario s = MakeScenario(20, 6, 2, 3.0, 6, true);
  SlsConfig sls;
  sls.eta = 0.5;
  sls.supervision_scale = 0.0;
  rbm::RbmConfig base = BaseConfig(6, 4);
  base.epochs = 4;
  SlsRbm model(base, sls, s.supervision);
  model.Train(s.x);
  // Equivalent plain run: halve the learning rate (η·lr) on a plain RBM.
  rbm::RbmConfig plain_cfg = base;
  plain_cfg.learning_rate = base.learning_rate * sls.eta;
  // Weight decay interacts with lr scaling; compare against a small
  // tolerance rather than exact equality.
  rbm::Rbm plain(plain_cfg);
  plain.Train(s.x);
  EXPECT_TRUE(model.weights().AllClose(plain.weights(), 0.05));
}

TEST(SlsModelsDeathTest, EtaOutsideUnitIntervalAborts) {
  const Scenario s = MakeScenario(10, 4, 2, 3.0, 7, true);
  SlsConfig sls;
  sls.eta = 1.0;
  EXPECT_DEATH(SlsRbm(BaseConfig(4, 3), sls, s.supervision), "eta");
}

TEST(SlsModelsDeathTest, InvalidSupervisionAborts) {
  const Scenario s = MakeScenario(10, 4, 2, 3.0, 8, true);
  voting::LocalSupervision bad = s.supervision;
  bad.cluster_of[0] = 5;  // out of range for num_clusters = 2
  SlsConfig sls;
  EXPECT_DEATH(SlsRbm(BaseConfig(4, 3), sls, bad), "out of range");
}

}  // namespace
}  // namespace mcirbm::core
