#include "core/sls_gradient.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "linalg/ops.h"
#include "rng/rng.h"

namespace mcirbm::core {
namespace {

struct GradSetup {
  linalg::Matrix v;         // m x nv
  linalg::Matrix w;         // nv x nh
  std::vector<double> b;    // nh
  voting::LocalSupervision sup;
  std::vector<std::size_t> batch_indices;
};

// Hidden features from the current parameters (the gradient formulas
// assume h = σ(b + vW)).
linalg::Matrix Hidden(const GradSetup& s) {
  linalg::Matrix h = linalg::Gemm(s.v, s.w);
  linalg::AddRowVector(&h, s.b);
  linalg::SigmoidInPlace(&h);
  return h;
}

GradSetup MakeSetup(int m, int nv, int nh, int k, std::uint64_t seed) {
  rng::Rng rng(seed);
  GradSetup s;
  s.v.Resize(m, nv);
  for (std::size_t i = 0; i < s.v.size(); ++i) {
    s.v.data()[i] = rng.Gaussian();
  }
  s.w.Resize(nv, nh);
  for (std::size_t i = 0; i < s.w.size(); ++i) {
    s.w.data()[i] = rng.Gaussian(0, 0.5);
  }
  s.b.resize(nh);
  for (auto& bj : s.b) bj = rng.Gaussian(0, 0.2);
  // Credible clusters: round-robin so every cluster has >= 2 members;
  // leave ~1/4 of instances unsupervised.
  s.sup.num_clusters = k;
  s.sup.cluster_of.resize(m);
  for (int i = 0; i < m; ++i) {
    s.sup.cluster_of[i] = (i % 4 == 3) ? -1 : i % k;
  }
  s.batch_indices.resize(m);
  for (int i = 0; i < m; ++i) s.batch_indices[i] = i;
  return s;
}

TEST(BuildSupervisionBatchTest, RestrictsToBatchRows) {
  voting::LocalSupervision sup;
  sup.num_clusters = 2;
  sup.cluster_of = {0, 0, 1, 1, -1, 0};
  // Batch contains global rows {5, 2, 0, 4}.
  const std::vector<std::size_t> batch = {5, 2, 0, 4};
  const SupervisionBatch sb = BuildSupervisionBatch(sup, batch);
  // Cluster 0 has batch rows {0 (global 5), 2 (global 0)}; cluster 1 has
  // only one member in batch (global 2) -> dropped.
  ASSERT_EQ(sb.members.size(), 1u);
  EXPECT_EQ(sb.members[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(sb.num_credible, 2u);
}

TEST(BuildSupervisionBatchTest, EmptySupervisionYieldsEmptyBatch) {
  voting::LocalSupervision sup;
  sup.num_clusters = 0;
  sup.cluster_of = {-1, -1};
  const SupervisionBatch sb = BuildSupervisionBatch(sup, {0, 1});
  EXPECT_TRUE(sb.empty());
}

// ---- Property: fast implementation == naive implementation ----

class SlsGradientEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SlsGradientEquivalenceTest, FastMatchesNaive) {
  const auto [m, nv, nh, k] = GetParam();
  const GradSetup s = MakeSetup(m, nv, nh, k, 100 + m + nv * 7 + nh * 13 + k);
  const linalg::Matrix h = Hidden(s);
  const SupervisionBatch sb = BuildSupervisionBatch(s.sup, s.batch_indices);

  SlsGradientOptions options;
  options.scale = 0.37;  // arbitrary non-unit scale

  linalg::Matrix dw_naive(nv, nh), dw_fast(nv, nh);
  std::vector<double> db_naive(nh, 0.0), db_fast(nh, 0.0);
  AccumulateSlsGradientNaive(s.v, h, sb, s.w, s.b, options,
                             {&dw_naive, &db_naive});
  AccumulateSlsGradientFast(s.v, h, sb, s.w, s.b, options,
                            {&dw_fast, &db_fast});
  EXPECT_TRUE(dw_fast.AllClose(dw_naive, 1e-9))
      << "m=" << m << " nv=" << nv << " nh=" << nh << " k=" << k;
  for (int j = 0; j < nh; ++j) {
    EXPECT_NEAR(db_fast[j], db_naive[j], 1e-9);
  }
}

TEST_P(SlsGradientEquivalenceTest, FastMatchesNaiveWithoutDisperse) {
  const auto [m, nv, nh, k] = GetParam();
  const GradSetup s = MakeSetup(m, nv, nh, k, 500 + m + nv + nh + k);
  const linalg::Matrix h = Hidden(s);
  const SupervisionBatch sb = BuildSupervisionBatch(s.sup, s.batch_indices);

  SlsGradientOptions options;
  options.include_disperse = false;

  linalg::Matrix dw_naive(nv, nh), dw_fast(nv, nh);
  std::vector<double> db_naive(nh, 0.0), db_fast(nh, 0.0);
  AccumulateSlsGradientNaive(s.v, h, sb, s.w, s.b, options,
                             {&dw_naive, &db_naive});
  AccumulateSlsGradientFast(s.v, h, sb, s.w, s.b, options,
                            {&dw_fast, &db_fast});
  EXPECT_TRUE(dw_fast.AllClose(dw_naive, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SlsGradientEquivalenceTest,
    ::testing::Values(std::make_tuple(8, 3, 4, 2),
                      std::make_tuple(12, 5, 6, 3),
                      std::make_tuple(20, 4, 3, 4),
                      std::make_tuple(9, 2, 8, 2),
                      std::make_tuple(16, 6, 5, 5)));

// ---- Property: the naive gradient matches finite differences of the
// objective. This validates the calculus of Eq. 27/31 end to end, with h
// recomputed from perturbed parameters (h depends on W and b). ----

double ObjectiveAt(const GradSetup& s, const linalg::Matrix& w,
                   const std::vector<double>& b,
                   const SlsGradientOptions& options) {
  linalg::Matrix h = linalg::Gemm(s.v, w);
  linalg::AddRowVector(&h, b);
  linalg::SigmoidInPlace(&h);
  const SupervisionBatch sb = BuildSupervisionBatch(s.sup, s.batch_indices);
  return SlsObjective(s.v, h, sb, w, b, options);
}

// Params: (include_disperse, normalize_by_pairs, disperse_weight).
class SlsFiniteDifferenceTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, double>> {
 protected:
  SlsGradientOptions Options() const {
    SlsGradientOptions options;
    options.include_disperse = std::get<0>(GetParam());
    options.normalize_by_pairs = std::get<1>(GetParam());
    options.disperse_weight = std::get<2>(GetParam());
    return options;
  }
};

TEST_P(SlsFiniteDifferenceTest, WeightGradientMatchesNumeric) {
  const SlsGradientOptions options = Options();
  const GradSetup s = MakeSetup(10, 4, 5, 2, 42);
  const linalg::Matrix h = Hidden(s);
  const SupervisionBatch sb = BuildSupervisionBatch(s.sup, s.batch_indices);

  linalg::Matrix dw(4, 5);
  std::vector<double> db(5, 0.0);
  AccumulateSlsGradientNaive(s.v, h, sb, s.w, s.b, options, {&dw, &db});

  const double eps = 1e-6;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      linalg::Matrix wp = s.w, wm = s.w;
      wp(i, j) += eps;
      wm(i, j) -= eps;
      const double numeric = (ObjectiveAt(s, wp, s.b, options) -
                              ObjectiveAt(s, wm, s.b, options)) /
                             (2 * eps);
      EXPECT_NEAR(dw(i, j), numeric, 1e-5) << "dW(" << i << "," << j << ")";
    }
  }
}

TEST_P(SlsFiniteDifferenceTest, BiasGradientMatchesNumeric) {
  const SlsGradientOptions options = Options();
  const GradSetup s = MakeSetup(10, 4, 5, 2, 43);
  const linalg::Matrix h = Hidden(s);
  const SupervisionBatch sb = BuildSupervisionBatch(s.sup, s.batch_indices);

  linalg::Matrix dw(4, 5);
  std::vector<double> db(5, 0.0);
  AccumulateSlsGradientNaive(s.v, h, sb, s.w, s.b, options, {&dw, &db});

  const double eps = 1e-6;
  for (std::size_t j = 0; j < 5; ++j) {
    std::vector<double> bp = s.b, bm = s.b;
    bp[j] += eps;
    bm[j] -= eps;
    const double numeric = (ObjectiveAt(s, s.w, bp, options) -
                            ObjectiveAt(s, s.w, bm, options)) /
                           (2 * eps);
    EXPECT_NEAR(db[j], numeric, 1e-5) << "db(" << j << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOptionCombos, SlsFiniteDifferenceTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1.0, 7.5)));

// ---- Behavioral properties ----

TEST(SlsGradientTest, DescentStepReducesObjective) {
  GradSetup s = MakeSetup(14, 5, 6, 2, 77);
  SlsGradientOptions options;
  const double before = ObjectiveAt(s, s.w, s.b, options);

  const linalg::Matrix h = Hidden(s);
  const SupervisionBatch sb = BuildSupervisionBatch(s.sup, s.batch_indices);
  linalg::Matrix dw(5, 6);
  std::vector<double> db(6, 0.0);
  AccumulateSlsGradientFast(s.v, h, sb, s.w, s.b, options, {&dw, &db});

  const double step = 1e-2;
  linalg::Matrix w2 = s.w;
  w2.Axpy(-step, dw);
  std::vector<double> b2 = s.b;
  for (std::size_t j = 0; j < b2.size(); ++j) b2[j] -= step * db[j];
  const double after = ObjectiveAt(s, w2, b2, options);
  EXPECT_LT(after, before);
}

TEST(SlsGradientTest, EmptyBatchAddsNothing) {
  const GradSetup s = MakeSetup(8, 3, 4, 2, 5);
  voting::LocalSupervision empty;
  empty.num_clusters = 0;
  empty.cluster_of.assign(8, -1);
  const SupervisionBatch sb =
      BuildSupervisionBatch(empty, s.batch_indices);
  linalg::Matrix dw(3, 4);
  std::vector<double> db(4, 0.0);
  const linalg::Matrix h = Hidden(s);
  AccumulateSlsGradientFast(s.v, h, sb, s.w, s.b, {}, {&dw, &db});
  EXPECT_DOUBLE_EQ(dw.FrobeniusNorm(), 0.0);
  for (double v : db) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SlsGradientTest, ScaleIsLinear) {
  const GradSetup s = MakeSetup(10, 3, 4, 2, 6);
  const linalg::Matrix h = Hidden(s);
  const SupervisionBatch sb = BuildSupervisionBatch(s.sup, s.batch_indices);
  linalg::Matrix dw1(3, 4), dw2(3, 4);
  std::vector<double> db1(4, 0.0), db2(4, 0.0);
  SlsGradientOptions o1, o2;
  o1.scale = 1.0;
  o2.scale = -2.5;
  AccumulateSlsGradientFast(s.v, h, sb, s.w, s.b, o1, {&dw1, &db1});
  AccumulateSlsGradientFast(s.v, h, sb, s.w, s.b, o2, {&dw2, &db2});
  linalg::Matrix expected = dw1 * -2.5;
  EXPECT_TRUE(dw2.AllClose(expected, 1e-9));
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(db2[j], -2.5 * db1[j], 1e-9);
}

TEST(SlsGradientTest, SingleClusterHasNoDisperseContribution) {
  GradSetup s = MakeSetup(10, 3, 4, 1, 7);
  for (auto& c : s.sup.cluster_of) {
    if (c >= 0) c = 0;  // all credible instances in one cluster
  }
  s.sup.num_clusters = 1;
  const linalg::Matrix h = Hidden(s);
  const SupervisionBatch sb = BuildSupervisionBatch(s.sup, s.batch_indices);
  linalg::Matrix dw_with(3, 4), dw_without(3, 4);
  std::vector<double> db_with(4, 0.0), db_without(4, 0.0);
  SlsGradientOptions with_d, without_d;
  without_d.include_disperse = false;
  AccumulateSlsGradientFast(s.v, h, sb, s.w, s.b, with_d,
                            {&dw_with, &db_with});
  AccumulateSlsGradientFast(s.v, h, sb, s.w, s.b, without_d,
                            {&dw_without, &db_without});
  EXPECT_TRUE(dw_with.AllClose(dw_without, 0));
}

TEST(SlsObjectiveTest, IdenticalHiddenRowsGiveZeroConstrict) {
  GradSetup s = MakeSetup(6, 3, 4, 1, 8);
  for (auto& c : s.sup.cluster_of) c = 0;
  s.sup.num_clusters = 1;
  // Identical visible rows -> identical hidden rows -> zero objective.
  for (std::size_t i = 1; i < s.v.rows(); ++i) {
    for (std::size_t j = 0; j < s.v.cols(); ++j) s.v(i, j) = s.v(0, j);
  }
  const linalg::Matrix h = Hidden(s);
  const SupervisionBatch sb = BuildSupervisionBatch(s.sup, s.batch_indices);
  EXPECT_NEAR(SlsObjective(s.v, h, sb, s.w, s.b, SlsGradientOptions{}),
              0.0, 1e-12);
}

}  // namespace
}  // namespace mcirbm::core
