// Tests for the extended integration members (agglomerative, DBSCAN, GMM,
// spectral) in the supervision-construction stage.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "metrics/external.h"

namespace mcirbm::core {
namespace {

data::Dataset SeparatedMixture(std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "extended-voters";
  spec.num_classes = 3;
  spec.num_instances = 150;
  spec.num_features = 12;
  spec.separation = 4.0;
  spec.informative_fraction = 0.6;
  data::Dataset ds = data::GenerateGaussianMixture(spec, seed);
  data::StandardizeInPlace(&ds.x);
  return ds;
}

TEST(ExtendedVotersTest, EachExtendedVoterAloneProducesValidSupervision) {
  const data::Dataset ds = SeparatedMixture(11);
  for (int which = 0; which < 4; ++which) {
    SupervisionConfig cfg;
    cfg.num_clusters = 3;
    cfg.use_density_peaks = false;
    cfg.use_kmeans = false;
    cfg.use_affinity_propagation = false;
    cfg.use_agglomerative = which == 0;
    cfg.use_dbscan = which == 1;
    cfg.use_gmm = which == 2;
    cfg.use_spectral = which == 3;
    const auto sup = ComputeSelfLearningSupervision(ds.x, cfg, 7);
    sup.CheckValid();
    EXPECT_GT(sup.NumCredible(), 0u) << "voter " << which;
  }
}

TEST(ExtendedVotersTest, FullEnsembleSupervisionIsPurerThanAnySingle) {
  const data::Dataset ds = SeparatedMixture(13);

  auto purity_of = [&](const SupervisionConfig& cfg) {
    const auto sup = ComputeSelfLearningSupervision(ds.x, cfg, 3);
    // Purity of credible instances against ground truth.
    std::vector<int> truth, pred;
    for (std::size_t i = 0; i < sup.cluster_of.size(); ++i) {
      if (sup.cluster_of[i] < 0) continue;
      truth.push_back(ds.labels[i]);
      pred.push_back(sup.cluster_of[i]);
    }
    if (pred.empty()) return 0.0;
    return metrics::Purity(truth, pred);
  };

  SupervisionConfig full;
  full.num_clusters = 3;
  full.use_agglomerative = true;
  full.use_gmm = true;
  const double ensemble_purity = purity_of(full);

  SupervisionConfig kmeans_only;
  kmeans_only.num_clusters = 3;
  kmeans_only.use_density_peaks = false;
  kmeans_only.use_affinity_propagation = false;
  const double single_purity = purity_of(kmeans_only);

  // The stricter 5-member unanimous vote should never be less pure than a
  // single K-means "vote" on this well-separated mixture.
  EXPECT_GE(ensemble_purity + 1e-9, single_purity);
}

TEST(ExtendedVotersTest, DbscanNoiseAbstainsRatherThanPoisons) {
  const data::Dataset ds = SeparatedMixture(17);
  SupervisionConfig with_dbscan;
  with_dbscan.num_clusters = 3;
  with_dbscan.use_kmeans = true;
  with_dbscan.use_density_peaks = false;
  with_dbscan.use_affinity_propagation = false;
  with_dbscan.use_dbscan = true;
  const auto sup = ComputeSelfLearningSupervision(ds.x, with_dbscan, 5);
  sup.CheckValid();
  // DBSCAN abstentions lower coverage but never create invalid ids.
  EXPECT_LE(sup.Coverage(), 1.0);
  for (int id : sup.cluster_of) {
    EXPECT_GE(id, -1);
    EXPECT_LT(id, sup.num_clusters);
  }
}

TEST(ExtendedVotersTest, MoreMembersNeverRaiseCoverage) {
  const data::Dataset ds = SeparatedMixture(19);
  SupervisionConfig base;
  base.num_clusters = 3;
  const double cov_base =
      ComputeSelfLearningSupervision(ds.x, base, 23).Coverage();

  SupervisionConfig extended = base;
  extended.use_agglomerative = true;
  extended.use_gmm = true;
  extended.use_spectral = true;
  const double cov_ext =
      ComputeSelfLearningSupervision(ds.x, extended, 23).Coverage();

  EXPECT_LE(cov_ext, cov_base + 1e-12)
      << "unanimity over a superset of voters cannot cover more";
}

TEST(ExtendedVotersTest, DeterministicGivenSeed) {
  const data::Dataset ds = SeparatedMixture(29);
  SupervisionConfig cfg;
  cfg.num_clusters = 3;
  cfg.use_agglomerative = true;
  cfg.use_dbscan = true;
  cfg.use_gmm = true;
  const auto a = ComputeSelfLearningSupervision(ds.x, cfg, 31);
  const auto b = ComputeSelfLearningSupervision(ds.x, cfg, 31);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

}  // namespace
}  // namespace mcirbm::core
