#include "core/self_training.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/transforms.h"
#include "metrics/external.h"

namespace mcirbm::core {
namespace {

data::Dataset Mixture(std::uint64_t seed, double separation = 3.0) {
  data::GaussianMixtureSpec spec;
  spec.name = "self-training";
  spec.num_classes = 3;
  spec.num_instances = 120;
  spec.num_features = 16;
  spec.separation = separation;
  spec.informative_fraction = 0.6;
  data::Dataset ds = data::GenerateGaussianMixture(spec, seed);
  data::StandardizeInPlace(&ds.x);
  return ds;
}

SelfTrainingConfig BaseConfig(int rounds) {
  SelfTrainingConfig config;
  config.pipeline.model = ModelKind::kSlsGrbm;
  config.pipeline.rbm.num_hidden = 16;
  config.pipeline.rbm.epochs = 12;
  config.pipeline.rbm.learning_rate = 1e-4;
  config.pipeline.supervision.num_clusters = 3;
  config.rounds = rounds;
  return config;
}

TEST(SelfTrainingTest, RunsRequestedRoundsAndReturnsModel) {
  const data::Dataset ds = Mixture(3);
  const auto result = RunSelfTraining(ds.x, BaseConfig(3), 7);
  ASSERT_EQ(result.rounds.size(), 3u);
  ASSERT_NE(result.model, nullptr);
  EXPECT_EQ(result.hidden_features.rows(), ds.x.rows());
  EXPECT_EQ(result.hidden_features.cols(), 16u);
  EXPECT_FALSE(result.stopped_early);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(result.rounds[r].round, r);
    EXPECT_GT(result.rounds[r].supervision_coverage, 0.0);
  }
}

TEST(SelfTrainingTest, RoundZeroEqualsPaperPipeline) {
  const data::Dataset ds = Mixture(5);
  SelfTrainingConfig config = BaseConfig(1);
  const auto self_trained = RunSelfTraining(ds.x, config, 11);

  // Reference: the one-shot pipeline with the same seed derivation.
  PipelineConfig pipeline = config.pipeline;
  const auto reference = RunEncoderPipeline(ds.x, pipeline, 11);
  // Same supervision statistics (the exact seed path differs, so compare
  // semantics rather than bit-level features).
  EXPECT_EQ(self_trained.rounds[0].supervision_clusters,
            reference.supervision.num_clusters);
}

TEST(SelfTrainingTest, DeterministicGivenSeed) {
  const data::Dataset ds = Mixture(7);
  const auto a = RunSelfTraining(ds.x, BaseConfig(2), 13);
  const auto b = RunSelfTraining(ds.x, BaseConfig(2), 13);
  EXPECT_TRUE(a.hidden_features.AllClose(b.hidden_features, 0.0));
  EXPECT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_DOUBLE_EQ(a.rounds[r].supervision_coverage,
                     b.rounds[r].supervision_coverage);
  }
}

TEST(SelfTrainingTest, EarlyStopOnStableCoverage) {
  const data::Dataset ds = Mixture(9, /*separation=*/5.0);
  SelfTrainingConfig config = BaseConfig(6);
  config.coverage_tolerance = 0.5;  // loose: triggers quickly
  const auto result = RunSelfTraining(ds.x, config, 17);
  EXPECT_TRUE(result.stopped_early);
  EXPECT_LT(result.rounds.size(), 6u);
}

TEST(SelfTrainingTest, LaterRoundSupervisionStaysValid) {
  const data::Dataset ds = Mixture(11);
  const auto result = RunSelfTraining(ds.x, BaseConfig(3), 19);
  result.supervision.CheckValid();
  EXPECT_GT(result.supervision.NumCredible(), 0u);
  EXPECT_LE(result.supervision.Coverage(), 1.0);
}

TEST(SelfTrainingTest, FeaturesRemainDiscriminative) {
  // The loop must not collapse the representation: clustering accuracy on
  // the final features should stay at least near the raw-data level.
  const data::Dataset ds = Mixture(13, /*separation=*/4.0);
  const auto result = RunSelfTraining(ds.x, BaseConfig(3), 23);
  // All features in (0,1) and not constant.
  double min_v = 1e9, max_v = -1e9;
  for (std::size_t i = 0; i < result.hidden_features.size(); ++i) {
    min_v = std::min(min_v, result.hidden_features.data()[i]);
    max_v = std::max(max_v, result.hidden_features.data()[i]);
  }
  EXPECT_LT(min_v, max_v) << "features collapsed to a constant";
}

TEST(SelfTrainingDeathTest, PlainModelRejected) {
  const data::Dataset ds = Mixture(15);
  SelfTrainingConfig config = BaseConfig(2);
  config.pipeline.model = ModelKind::kGrbm;
  EXPECT_DEATH(RunSelfTraining(ds.x, config, 3), "sls model");
}

}  // namespace
}  // namespace mcirbm::core
