#include "core/stacked.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/transforms.h"
#include "metrics/external.h"

namespace mcirbm::core {
namespace {

data::Dataset RealValuedMixture(std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "stacked";
  spec.num_classes = 3;
  spec.num_instances = 150;
  spec.num_features = 20;
  spec.separation = 3.5;
  spec.informative_fraction = 0.6;
  data::Dataset ds = data::GenerateGaussianMixture(spec, seed);
  data::StandardizeInPlace(&ds.x);
  return ds;
}

StackedLayerConfig GrbmLayer(int hidden) {
  StackedLayerConfig layer;
  layer.model = ModelKind::kGrbm;
  layer.rbm.num_hidden = hidden;
  layer.rbm.epochs = 15;
  layer.rbm.learning_rate = 1e-3;
  return layer;
}

StackedLayerConfig RbmLayer(int hidden) {
  StackedLayerConfig layer;
  layer.model = ModelKind::kRbm;
  layer.rbm.num_hidden = hidden;
  layer.rbm.epochs = 15;
  layer.rbm.learning_rate = 0.05;
  return layer;
}

TEST(StackedEncoderTest, TwoLayerShapesAndTransform) {
  const data::Dataset ds = RealValuedMixture(3);
  StackedEncoder stack({GrbmLayer(16), RbmLayer(8)});
  const auto stats = stack.Train(ds.x, 11);
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_FALSE(stats[0].epochs.empty());
  EXPECT_FALSE(stats[1].epochs.empty());

  const linalg::Matrix features = stack.Transform(ds.x);
  EXPECT_EQ(features.rows(), ds.x.rows());
  EXPECT_EQ(features.cols(), 8u);

  const linalg::Matrix depth1 = stack.Transform(ds.x, 1);
  EXPECT_EQ(depth1.cols(), 16u);
}

TEST(StackedEncoderTest, TransformMatchesManualComposition) {
  const data::Dataset ds = RealValuedMixture(5);
  StackedEncoder stack({GrbmLayer(12), RbmLayer(6)});
  stack.Train(ds.x, 13);
  const linalg::Matrix via_stack = stack.Transform(ds.x);
  const linalg::Matrix h0 = stack.layer(0).HiddenFeatures(ds.x);
  const linalg::Matrix via_manual = stack.layer(1).HiddenFeatures(h0);
  EXPECT_TRUE(via_stack.AllClose(via_manual, 1e-12));
}

TEST(StackedEncoderTest, SlsLayerRecomputesSupervisionPerLayer) {
  const data::Dataset ds = RealValuedMixture(7);
  StackedLayerConfig bottom;
  bottom.model = ModelKind::kSlsGrbm;
  bottom.rbm.num_hidden = 16;
  bottom.rbm.epochs = 10;
  bottom.rbm.learning_rate = 1e-4;
  bottom.supervision.num_clusters = 3;

  StackedLayerConfig top;
  top.model = ModelKind::kSlsRbm;
  top.rbm.num_hidden = 8;
  top.rbm.epochs = 10;
  top.rbm.learning_rate = 1e-4;
  top.supervision.num_clusters = 3;
  top.recompute_supervision = true;

  StackedEncoder stack({bottom, top});
  const auto stats = stack.Train(ds.x, 17);
  EXPECT_GT(stats[0].supervision_coverage, 0.0);
  EXPECT_GT(stats[1].supervision_coverage, 0.0);
  EXPECT_GT(stats[0].supervision_clusters, 1);
  EXPECT_GT(stats[1].supervision_clusters, 1);
}

TEST(StackedEncoderTest, ReusedSupervisionSkipsRecomputation) {
  const data::Dataset ds = RealValuedMixture(9);
  StackedLayerConfig bottom;
  bottom.model = ModelKind::kSlsGrbm;
  bottom.rbm.num_hidden = 12;
  bottom.rbm.epochs = 5;
  bottom.rbm.learning_rate = 1e-4;
  bottom.supervision.num_clusters = 3;

  StackedLayerConfig top = bottom;
  top.model = ModelKind::kSlsRbm;
  top.recompute_supervision = false;  // reuse the bottom supervision

  StackedEncoder stack({bottom, top});
  const auto stats = stack.Train(ds.x, 19);
  // Reused supervision: identical coverage and cluster count.
  EXPECT_DOUBLE_EQ(stats[0].supervision_coverage,
                   stats[1].supervision_coverage);
  EXPECT_EQ(stats[0].supervision_clusters, stats[1].supervision_clusters);
}

TEST(StackedEncoderTest, DeterministicGivenSeed) {
  const data::Dataset ds = RealValuedMixture(11);
  StackedEncoder a({GrbmLayer(10), RbmLayer(5)});
  StackedEncoder b({GrbmLayer(10), RbmLayer(5)});
  a.Train(ds.x, 23);
  b.Train(ds.x, 23);
  EXPECT_TRUE(a.Transform(ds.x).AllClose(b.Transform(ds.x), 0.0));
}

TEST(StackedEncoderTest, DeeperFeaturesStayInUnitInterval) {
  const data::Dataset ds = RealValuedMixture(13);
  StackedEncoder stack({GrbmLayer(16), RbmLayer(8), RbmLayer(4)});
  stack.Train(ds.x, 29);
  const linalg::Matrix features = stack.Transform(ds.x);
  for (std::size_t i = 0; i < features.size(); ++i) {
    EXPECT_GE(features.data()[i], 0.0);
    EXPECT_LE(features.data()[i], 1.0);
  }
}

TEST(StackedEncoderDeathTest, TransformBeforeTrainChecks) {
  const data::Dataset ds = RealValuedMixture(15);
  StackedEncoder stack({GrbmLayer(8)});
  EXPECT_DEATH(stack.Transform(ds.x), "Transform before Train");
}

}  // namespace
}  // namespace mcirbm::core
