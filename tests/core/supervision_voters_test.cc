// Tests for SupervisionConfig::kmeans_voters — additional independently
// seeded K-means members in the multi-clustering integration. More voters
// make the unanimous vote stricter, trading coverage for precision.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "metrics/external.h"

namespace mcirbm::core {
namespace {

data::Dataset NoisyMixture(std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "voters";
  spec.num_classes = 3;
  spec.num_instances = 240;
  spec.num_features = 16;
  spec.separation = 2.0;  // overlapping: K-means restarts disagree
  spec.informative_fraction = 0.5;
  spec.confusion_fraction = 0.15;
  data::Dataset ds = data::GenerateGaussianMixture(spec, seed);
  data::StandardizeInPlace(&ds.x);
  return ds;
}

TEST(SupervisionVotersTest, MoreVotersNeverRaiseCoverage) {
  const data::Dataset ds = NoisyMixture(3);
  double prev_coverage = 1.1;
  for (const int voters : {1, 3, 6}) {
    SupervisionConfig cfg;
    cfg.num_clusters = 3;
    cfg.kmeans_voters = voters;
    const auto sup = ComputeSelfLearningSupervision(ds.x, cfg, 5);
    EXPECT_LE(sup.Coverage(), prev_coverage + 1e-12)
        << voters << " voters";
    prev_coverage = sup.Coverage();
  }
}

TEST(SupervisionVotersTest, StricterVoteDoesNotLowerPrecision) {
  // Consensus precision (accuracy of credible instances vs truth) with 5
  // voters should be at least that of 1 voter on overlapping data, since
  // only unstable instances are dropped. Allow a small tolerance: the
  // retained set changes, so exact monotonicity is not guaranteed.
  const data::Dataset ds = NoisyMixture(4);
  auto precision_with = [&](int voters) {
    SupervisionConfig cfg;
    cfg.num_clusters = 3;
    cfg.kmeans_voters = voters;
    const auto sup = ComputeSelfLearningSupervision(ds.x, cfg, 5);
    std::vector<int> truth, pred;
    for (std::size_t i = 0; i < sup.cluster_of.size(); ++i) {
      if (sup.cluster_of[i] >= 0) {
        truth.push_back(ds.labels[i]);
        pred.push_back(sup.cluster_of[i]);
      }
    }
    return truth.empty() ? 0.0
                         : metrics::ClusteringAccuracy(truth, pred);
  };
  EXPECT_GE(precision_with(5), precision_with(1) - 0.05);
}

TEST(SupervisionVotersTest, DeterministicGivenSeed) {
  const data::Dataset ds = NoisyMixture(6);
  SupervisionConfig cfg;
  cfg.num_clusters = 3;
  cfg.kmeans_voters = 3;
  const auto a = ComputeSelfLearningSupervision(ds.x, cfg, 9);
  const auto b = ComputeSelfLearningSupervision(ds.x, cfg, 9);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

TEST(SupervisionVotersTest, VotersUseDistinctSeeds) {
  // With K-means disabled the voters knob must be irrelevant.
  const data::Dataset ds = NoisyMixture(8);
  SupervisionConfig no_km;
  no_km.num_clusters = 3;
  no_km.use_kmeans = false;
  no_km.kmeans_voters = 4;
  SupervisionConfig no_km_single = no_km;
  no_km_single.kmeans_voters = 1;
  const auto a = ComputeSelfLearningSupervision(ds.x, no_km, 2);
  const auto b = ComputeSelfLearningSupervision(ds.x, no_km_single, 2);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
}

TEST(SupervisionVotersDeathTest, ZeroVotersAborts) {
  const data::Dataset ds = NoisyMixture(1);
  SupervisionConfig cfg;
  cfg.num_clusters = 3;
  cfg.kmeans_voters = 0;
  EXPECT_DEATH(ComputeSelfLearningSupervision(ds.x, cfg, 1), "kmeans_voters");
}

}  // namespace
}  // namespace mcirbm::core
