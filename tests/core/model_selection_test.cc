#include "core/model_selection.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/transforms.h"
#include "rng/rng.h"

namespace mcirbm::core {
namespace {

data::Dataset Mixture(std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "width-select";
  spec.num_classes = 3;
  spec.num_instances = 120;
  spec.num_features = 16;
  spec.separation = 3.5;
  spec.informative_fraction = 0.6;
  data::Dataset ds = data::GenerateGaussianMixture(spec, seed);
  data::StandardizeInPlace(&ds.x);
  return ds;
}

PipelineConfig FastConfig() {
  PipelineConfig config;
  config.model = ModelKind::kGrbm;  // plain: fast, no supervision stage
  config.rbm.epochs = 10;
  config.rbm.learning_rate = 1e-3;
  return config;
}

TEST(ModelSelectionTest, SweepCoversAllCandidates) {
  const data::Dataset ds = Mixture(3);
  const auto selection =
      SelectHiddenWidth(ds.x, FastConfig(), {4, 8, 16}, 3, 7);
  ASSERT_EQ(selection.candidates.size(), 3u);
  EXPECT_EQ(selection.candidates[0].num_hidden, 4);
  EXPECT_EQ(selection.candidates[1].num_hidden, 8);
  EXPECT_EQ(selection.candidates[2].num_hidden, 16);
}

TEST(ModelSelectionTest, BestIsArgmaxOfSilhouette) {
  const data::Dataset ds = Mixture(5);
  const auto selection =
      SelectHiddenWidth(ds.x, FastConfig(), {4, 8, 16, 32}, 3, 7);
  double best = -2;
  int best_width = 0;
  for (const auto& c : selection.candidates) {
    if (c.silhouette > best) {
      best = c.silhouette;
      best_width = c.num_hidden;
    }
  }
  EXPECT_EQ(selection.best_num_hidden, best_width);
}

TEST(ModelSelectionTest, DeterministicGivenSeed) {
  const data::Dataset ds = Mixture(7);
  const auto a = SelectHiddenWidth(ds.x, FastConfig(), {8, 16}, 3, 11);
  const auto b = SelectHiddenWidth(ds.x, FastConfig(), {8, 16}, 3, 11);
  EXPECT_EQ(a.best_num_hidden, b.best_num_hidden);
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.candidates[i].silhouette,
                     b.candidates[i].silhouette);
  }
}

TEST(ModelSelectionTest, SingleCandidateIsTriviallyBest) {
  const data::Dataset ds = Mixture(9);
  const auto selection =
      SelectHiddenWidth(ds.x, FastConfig(), {12}, 3, 7);
  EXPECT_EQ(selection.best_num_hidden, 12);
}

TEST(ModelSelectionTest, WorksWithSlsModel) {
  const data::Dataset ds = Mixture(11);
  PipelineConfig config = FastConfig();
  config.model = ModelKind::kSlsGrbm;
  config.rbm.learning_rate = 1e-4;
  config.supervision.num_clusters = 3;
  const auto selection = SelectHiddenWidth(ds.x, config, {8, 16}, 3, 7);
  EXPECT_TRUE(selection.best_num_hidden == 8 ||
              selection.best_num_hidden == 16);
  for (const auto& c : selection.candidates) {
    EXPECT_GE(c.silhouette, -1.0);
    EXPECT_LE(c.silhouette, 1.0);
  }
}

TEST(KSelectionTest, RecoversTrueClusterCountOnSeparatedBlobs) {
  // 3 tight blobs far apart: silhouette peaks exactly at k = 3.
  rng::Rng rng(21);
  linalg::Matrix x(90, 2);
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 30; ++i) {
      const std::size_t r = c * 30 + i;
      x(r, 0) = rng.Gaussian(c * 20.0, 0.5);
      x(r, 1) = rng.Gaussian((c % 2) * 20.0, 0.5);
    }
  }
  const auto selection = SelectNumClusters(x, 2, 6, 7);
  EXPECT_EQ(selection.best_k, 3);
  ASSERT_EQ(selection.candidates.size(), 5u);
}

TEST(KSelectionTest, SweepsRequestedRangeInclusive) {
  const data::Dataset ds = Mixture(17);
  const auto selection = SelectNumClusters(ds.x, 2, 5, 7);
  ASSERT_EQ(selection.candidates.size(), 4u);
  EXPECT_EQ(selection.candidates.front().k, 2);
  EXPECT_EQ(selection.candidates.back().k, 5);
  EXPECT_GE(selection.best_k, 2);
  EXPECT_LE(selection.best_k, 5);
}

TEST(KSelectionTest, DeterministicGivenSeed) {
  const data::Dataset ds = Mixture(19);
  const auto a = SelectNumClusters(ds.x, 2, 4, 11);
  const auto b = SelectNumClusters(ds.x, 2, 4, 11);
  EXPECT_EQ(a.best_k, b.best_k);
}

TEST(KSelectionDeathTest, KBelowTwoChecks) {
  const data::Dataset ds = Mixture(21);
  EXPECT_DEATH(SelectNumClusters(ds.x, 1, 3, 7), "k = 2");
}

TEST(ModelSelectionDeathTest, EmptyWidthsChecks) {
  const data::Dataset ds = Mixture(13);
  EXPECT_DEATH(SelectHiddenWidth(ds.x, FastConfig(), {}, 3, 7),
               "candidate widths");
}

}  // namespace
}  // namespace mcirbm::core
