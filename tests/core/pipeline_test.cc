#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "clustering/kmeans.h"
#include "data/synthetic.h"
#include "data/transforms.h"
#include "metrics/external.h"

namespace mcirbm::core {
namespace {

data::Dataset MakeData(int n, int d, int k, double separation,
                       std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "pipe";
  spec.num_classes = k;
  spec.num_instances = n;
  spec.num_features = d;
  spec.separation = separation;
  return data::GenerateGaussianMixture(spec, seed);
}

PipelineConfig SmallConfig(ModelKind model) {
  PipelineConfig cfg;
  cfg.model = model;
  cfg.rbm.num_hidden = 8;
  cfg.rbm.epochs = 15;
  cfg.rbm.learning_rate = 1e-3;
  cfg.supervision.num_clusters = 2;
  return cfg;
}

TEST(SupervisionPipelineTest, EasyDataGetsHighCoverageSupervision) {
  data::Dataset d = MakeData(90, 6, 2, 8.0, 1);
  data::StandardizeInPlace(&d.x);
  SupervisionConfig cfg;
  cfg.num_clusters = 2;
  const voting::LocalSupervision sup =
      ComputeSelfLearningSupervision(d.x, cfg, 1);
  EXPECT_EQ(sup.num_clusters, 2);
  EXPECT_GT(sup.Coverage(), 0.8);
  // Credible clusters should align with the true classes almost perfectly.
  std::vector<int> truth, pred;
  for (std::size_t i = 0; i < sup.cluster_of.size(); ++i) {
    if (sup.cluster_of[i] >= 0) {
      truth.push_back(d.labels[i]);
      pred.push_back(sup.cluster_of[i]);
    }
  }
  EXPECT_GT(metrics::ClusteringAccuracy(truth, pred), 0.95);
}

TEST(SupervisionPipelineTest, HardDataGetsLowerCoverage) {
  data::Dataset easy = MakeData(80, 6, 2, 8.0, 2);
  data::Dataset hard = MakeData(80, 6, 2, 0.7, 2);
  data::StandardizeInPlace(&easy.x);
  data::StandardizeInPlace(&hard.x);
  SupervisionConfig cfg;
  cfg.num_clusters = 2;
  const double cov_easy =
      ComputeSelfLearningSupervision(easy.x, cfg, 1).Coverage();
  const double cov_hard =
      ComputeSelfLearningSupervision(hard.x, cfg, 1).Coverage();
  EXPECT_LT(cov_hard, cov_easy);
}

TEST(SupervisionPipelineTest, SubsetOfClusterersWorks) {
  data::Dataset d = MakeData(60, 5, 2, 6.0, 3);
  data::StandardizeInPlace(&d.x);
  SupervisionConfig cfg;
  cfg.num_clusters = 2;
  cfg.use_affinity_propagation = false;
  const voting::LocalSupervision sup =
      ComputeSelfLearningSupervision(d.x, cfg, 1);
  EXPECT_GT(sup.Coverage(), 0.5);
}

TEST(SupervisionPipelineDeathTest, NoClusterersAborts) {
  linalg::Matrix x(10, 3);
  SupervisionConfig cfg;
  cfg.use_density_peaks = false;
  cfg.use_kmeans = false;
  cfg.use_affinity_propagation = false;
  EXPECT_DEATH(ComputeSelfLearningSupervision(x, cfg, 1),
               "at least one base clusterer");
}

TEST(PipelineTest, AllModelKindsProduceFeatures) {
  data::Dataset d = MakeData(50, 8, 2, 4.0, 4);
  linalg::Matrix real = d.x;
  data::StandardizeInPlace(&real);
  linalg::Matrix binary = d.x;
  data::MinMaxScaleInPlace(&binary);

  for (ModelKind kind : {ModelKind::kRbm, ModelKind::kGrbm,
                         ModelKind::kSlsRbm, ModelKind::kSlsGrbm}) {
    const bool is_binary_model =
        kind == ModelKind::kRbm || kind == ModelKind::kSlsRbm;
    const linalg::Matrix& x = is_binary_model ? binary : real;
    const PipelineResult result =
        RunEncoderPipeline(x, SmallConfig(kind), 5);
    EXPECT_EQ(result.hidden_features.rows(), 50u) << ModelKindName(kind);
    EXPECT_EQ(result.hidden_features.cols(), 8u);
    EXPECT_NE(result.model, nullptr);
  }
}

TEST(PipelineTest, PlainModelsSkipSupervision) {
  data::Dataset d = MakeData(40, 6, 2, 4.0, 6);
  data::StandardizeInPlace(&d.x);
  const PipelineResult result =
      RunEncoderPipeline(d.x, SmallConfig(ModelKind::kGrbm), 7);
  EXPECT_EQ(result.supervision.num_clusters, 0);
  EXPECT_TRUE(result.supervision.cluster_of.empty());
}

TEST(PipelineTest, DeterministicGivenSeed) {
  data::Dataset d = MakeData(40, 6, 2, 5.0, 7);
  data::StandardizeInPlace(&d.x);
  const PipelineConfig cfg = SmallConfig(ModelKind::kSlsGrbm);
  const PipelineResult a = RunEncoderPipeline(d.x, cfg, 11);
  const PipelineResult b = RunEncoderPipeline(d.x, cfg, 11);
  EXPECT_TRUE(a.hidden_features.AllClose(b.hidden_features, 0));
}

TEST(PipelineTest, SlsFeaturesImproveKmeansOnModerateData) {
  // Moderate separation: raw k-means is imperfect, sls features should be
  // at least as good (the paper's headline effect, miniaturized).
  data::Dataset d = MakeData(120, 10, 2, 2.8, 8);
  data::StandardizeInPlace(&d.x);

  PipelineConfig cfg = SmallConfig(ModelKind::kSlsGrbm);
  cfg.rbm.epochs = 30;
  cfg.sls.supervision_scale = 500.0;
  const PipelineResult sls = RunEncoderPipeline(d.x, cfg, 9);

  clustering::KMeansConfig km;
  km.k = 2;
  const auto raw_result = clustering::KMeans(km).Cluster(d.x, 1);
  const auto sls_result =
      clustering::KMeans(km).Cluster(sls.hidden_features, 1);
  const double acc_raw =
      metrics::ClusteringAccuracy(d.labels, raw_result.assignment);
  const double acc_sls =
      metrics::ClusteringAccuracy(d.labels, sls_result.assignment);
  EXPECT_GE(acc_sls, acc_raw - 0.02);
}

TEST(PipelineTest, ModelKindNamesAreStable) {
  EXPECT_STREQ(ModelKindName(ModelKind::kRbm), "RBM");
  EXPECT_STREQ(ModelKindName(ModelKind::kGrbm), "GRBM");
  EXPECT_STREQ(ModelKindName(ModelKind::kSlsRbm), "slsRBM");
  EXPECT_STREQ(ModelKindName(ModelKind::kSlsGrbm), "slsGRBM");
}

}  // namespace
}  // namespace mcirbm::core
