#include "linalg/pca.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/ops.h"
#include "linalg/stats.h"
#include "rng/rng.h"

namespace mcirbm::linalg {
namespace {

// n points on a noisy line y = 2x in 2-D: one dominant direction.
Matrix LineData(std::size_t n, double noise, rng::Rng* rng) {
  Matrix x(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng->Gaussian();
    x(i, 0) = t + noise * rng->Gaussian();
    x(i, 1) = 2 * t + noise * rng->Gaussian();
  }
  return x;
}

TEST(PcaTest, RecoversDominantDirection) {
  rng::Rng rng(7);
  const Matrix x = LineData(400, 0.01, &rng);
  const Pca pca = Pca::Fit(x, {.num_components = 2});
  // First component ∝ (1,2)/sqrt(5) up to sign.
  const double c0 = pca.components()(0, 0);
  const double c1 = pca.components()(1, 0);
  EXPECT_NEAR(std::abs(c1 / c0), 2.0, 0.05);
  // Nearly all variance on the first component.
  const auto ratio = pca.ExplainedVarianceRatio();
  EXPECT_GT(ratio[0], 0.99);
}

TEST(PcaTest, TransformThenInverseIsIdentityWithFullRank) {
  rng::Rng rng(13);
  Matrix x(50, 4);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) x(i, j) = rng.Gaussian();
  }
  const Pca pca = Pca::Fit(x, {.num_components = 4});
  const Matrix restored = pca.InverseTransform(pca.Transform(x));
  EXPECT_TRUE(restored.AllClose(x, 1e-8));
}

TEST(PcaTest, WhitenedOutputHasUnitVariance) {
  rng::Rng rng(29);
  const Matrix x = LineData(600, 0.5, &rng);
  const Pca pca = Pca::Fit(x, {.num_components = 2, .whiten = true});
  const Matrix z = pca.Transform(x);
  const ColumnStats stats = ComputeColumnStats(z);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(stats.mean[j], 0.0, 1e-9);
    EXPECT_NEAR(stats.stddev[j], 1.0, 0.05) << "component " << j;
  }
}

TEST(PcaTest, WhitenedInverseRoundTrips) {
  rng::Rng rng(31);
  const Matrix x = LineData(100, 0.5, &rng);
  const Pca pca = Pca::Fit(x, {.num_components = 2, .whiten = true});
  const Matrix restored = pca.InverseTransform(pca.Transform(x));
  EXPECT_TRUE(restored.AllClose(x, 1e-5));
}

TEST(PcaTest, ProjectedCoordinatesAreUncorrelated) {
  rng::Rng rng(17);
  Matrix x(300, 3);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double a = rng.Gaussian();
    const double b = rng.Gaussian();
    x(i, 0) = a;
    x(i, 1) = a + 0.3 * b;
    x(i, 2) = b;
  }
  const Pca pca = Pca::Fit(x);
  const Matrix z = pca.Transform(x);
  // Covariance of the projection must be diagonal.
  const std::size_t n = z.rows();
  Matrix centered = z;
  const auto means = ColMeans(z);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = centered.Row(i);
    for (std::size_t j = 0; j < row.size(); ++j) row[j] -= means[j];
  }
  Matrix cov = GemmTransA(centered, centered);
  cov *= 1.0 / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < cov.rows(); ++i) {
    for (std::size_t j = 0; j < cov.cols(); ++j) {
      if (i != j) EXPECT_NEAR(cov(i, j), 0.0, 1e-6);
    }
  }
}

TEST(PcaTest, ExplainedVarianceMatchesColumnVariance) {
  rng::Rng rng(23);
  // Axis-aligned data: variances 9 and 1, components are the axes.
  Matrix x(500, 2);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    x(i, 0) = rng.Gaussian(0, 3);
    x(i, 1) = rng.Gaussian(0, 1);
  }
  const Pca pca = Pca::Fit(x);
  EXPECT_NEAR(pca.explained_variance()[0], 9.0, 1.2);
  EXPECT_NEAR(pca.explained_variance()[1], 1.0, 0.2);
}

TEST(PcaTest, ComponentsForVarianceThreshold) {
  rng::Rng rng(41);
  const Matrix x = LineData(300, 0.05, &rng);
  const Pca pca = Pca::Fit(x);
  EXPECT_EQ(pca.ComponentsForVariance(0.9), 1u);
  EXPECT_EQ(pca.ComponentsForVariance(1.0), 2u);
  EXPECT_EQ(pca.ComponentsForVariance(0.0), 1u);
}

TEST(PcaTest, DefaultComponentCountIsMinRankBound) {
  rng::Rng rng(43);
  Matrix x(5, 8);  // n-1 = 4 < d = 8.
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) x(i, j) = rng.Gaussian();
  }
  const Pca pca = Pca::Fit(x);
  EXPECT_EQ(pca.num_components(), 4u);
}

TEST(PcaTest, TruncatedReconstructionReducesError) {
  rng::Rng rng(47);
  const Matrix x = LineData(200, 0.3, &rng);
  const Pca one = Pca::Fit(x, {.num_components = 1});
  const Matrix restored = one.InverseTransform(one.Transform(x));
  // The rank-1 reconstruction keeps most of the energy of centered data.
  const auto means = ColMeans(x);
  double total = 0, residual = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      const double c = x(i, j) - means[j];
      total += c * c;
      const double r = x(i, j) - restored(i, j);
      residual += r * r;
    }
  }
  EXPECT_LT(residual, 0.2 * total);
}

}  // namespace
}  // namespace mcirbm::linalg
