#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/ops.h"
#include "rng/rng.h"

namespace mcirbm::linalg {
namespace {

Matrix RandomSymmetric(std::size_t n, rng::Rng* rng) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng->Gaussian();
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

// || A·V − V·diag(λ) ||_F, the defect of the decomposition.
double ResidualNorm(const Matrix& a, const EigenDecomposition& eig) {
  Matrix av = Gemm(a, eig.vectors);
  Matrix vl = eig.vectors;
  for (std::size_t i = 0; i < vl.rows(); ++i) {
    for (std::size_t j = 0; j < vl.cols(); ++j) vl(i, j) *= eig.values[j];
  }
  return (av - vl).FrobeniusNorm();
}

TEST(JacobiEigenTest, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix a{{3, 0, 0}, {0, -1, 0}, {0, 0, 7}};
  const EigenDecomposition eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.converged);
  ASSERT_EQ(eig.values.size(), 3u);
  EXPECT_NEAR(eig.values[0], 7, 1e-12);
  EXPECT_NEAR(eig.values[1], 3, 1e-12);
  EXPECT_NEAR(eig.values[2], -1, 1e-12);
}

TEST(JacobiEigenTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix a{{2, 1}, {1, 2}};
  const EigenDecomposition eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.converged);
  EXPECT_NEAR(eig.values[0], 3, 1e-12);
  EXPECT_NEAR(eig.values[1], 1, 1e-12);
  // Leading eigenvector is (1,1)/sqrt(2) up to sign.
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), inv_sqrt2, 1e-12);
  EXPECT_NEAR(std::abs(eig.vectors(1, 0)), inv_sqrt2, 1e-12);
}

TEST(JacobiEigenTest, EmptyMatrix) {
  const EigenDecomposition eig = JacobiEigenSymmetric(Matrix());
  EXPECT_TRUE(eig.converged);
  EXPECT_TRUE(eig.values.empty());
}

TEST(JacobiEigenTest, OneByOne) {
  Matrix a{{-4.5}};
  const EigenDecomposition eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.converged);
  EXPECT_NEAR(eig.values[0], -4.5, 1e-15);
  EXPECT_NEAR(std::abs(eig.vectors(0, 0)), 1.0, 1e-15);
}

TEST(JacobiEigenTest, ValuesSortedDescending) {
  rng::Rng rng(11);
  const Matrix a = RandomSymmetric(12, &rng);
  const EigenDecomposition eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.converged);
  EXPECT_TRUE(std::is_sorted(eig.values.rbegin(), eig.values.rend()));
}

TEST(JacobiEigenTest, TraceEqualsEigenvalueSum) {
  rng::Rng rng(5);
  const Matrix a = RandomSymmetric(9, &rng);
  const EigenDecomposition eig = JacobiEigenSymmetric(a);
  double trace = 0;
  for (std::size_t i = 0; i < a.rows(); ++i) trace += a(i, i);
  double sum = 0;
  for (double v : eig.values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-9);
}

class JacobiPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(JacobiPropertyTest, ReconstructsInput) {
  rng::Rng rng(100 + GetParam());
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 17;
  const Matrix a = RandomSymmetric(n, &rng);
  const EigenDecomposition eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.converged);
  EXPECT_LE(ResidualNorm(a, eig), 1e-9 * std::max(1.0, a.FrobeniusNorm()));
}

TEST_P(JacobiPropertyTest, EigenvectorsAreOrthonormal) {
  rng::Rng rng(200 + GetParam());
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 17;
  const Matrix a = RandomSymmetric(n, &rng);
  const EigenDecomposition eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.converged);
  const Matrix gram = GemmTransA(eig.vectors, eig.vectors);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-10)
          << "gram(" << i << "," << j << ")";
    }
  }
}

TEST_P(JacobiPropertyTest, PsdMatrixHasNonNegativeEigenvalues) {
  rng::Rng rng(300 + GetParam());
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 11;
  // B·Bᵀ is PSD by construction.
  Matrix b(n, n + 2);
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.Gaussian();
  }
  const Matrix a = GemmTransB(b, b);
  const EigenDecomposition eig = JacobiEigenSymmetric(a);
  ASSERT_TRUE(eig.converged);
  for (double v : eig.values) EXPECT_GE(v, -1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JacobiPropertyTest, ::testing::Range(0, 10));

TEST(TopEigenvectorsTest, SelectsLeadingColumns) {
  Matrix a{{5, 0, 0}, {0, 2, 0}, {0, 0, 1}};
  const EigenDecomposition eig = JacobiEigenSymmetric(a);
  const Matrix top = TopEigenvectors(eig, 2);
  EXPECT_EQ(top.rows(), 3u);
  EXPECT_EQ(top.cols(), 2u);
  // Leading direction corresponds to eigenvalue 5 -> e1.
  EXPECT_NEAR(std::abs(top(0, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(top(1, 1)), 1.0, 1e-12);
}

TEST(BottomEigenvectorsTest, AscendingOrder) {
  Matrix a{{5, 0, 0}, {0, 2, 0}, {0, 0, 1}};
  const EigenDecomposition eig = JacobiEigenSymmetric(a);
  const Matrix bottom = BottomEigenvectors(eig, 2);
  // First column must be the eigenvalue-1 direction (e3), second the
  // eigenvalue-2 direction (e2).
  EXPECT_NEAR(std::abs(bottom(2, 0)), 1.0, 1e-12);
  EXPECT_NEAR(std::abs(bottom(1, 1)), 1.0, 1e-12);
}

}  // namespace
}  // namespace mcirbm::linalg
