#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace mcirbm::linalg {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(MatrixTest, ValueConstructor) {
  Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(1, 2), 6);
}

TEST(MatrixTest, RowSpanIsWritable) {
  Matrix m(2, 3);
  auto row = m.Row(1);
  row[2] = 9;
  EXPECT_EQ(m(1, 2), 9);
}

TEST(MatrixTest, FillSetsAll) {
  Matrix m(3, 3);
  m.Fill(2.0);
  EXPECT_EQ(m.Sum(), 18.0);
}

TEST(MatrixTest, ResizeZeroesContent) {
  Matrix m(2, 2, 5.0);
  m.Resize(3, 1);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_EQ(m.Sum(), 0.0);
}

TEST(MatrixTest, Transposed) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 0), 3);
  EXPECT_EQ(t(0, 1), 4);
}

TEST(MatrixTest, DoubleTransposeIsIdentity) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_TRUE(m.Transposed().Transposed().AllClose(m, 0));
}

TEST(MatrixTest, SelectRowsPicksInOrder) {
  Matrix m{{1, 1}, {2, 2}, {3, 3}};
  Matrix s = m.SelectRows(std::vector<std::size_t>{2, 0});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 0), 3);
  EXPECT_EQ(s(1, 0), 1);
}

TEST(MatrixTest, SelectRowsIntOverload) {
  Matrix m{{1, 1}, {2, 2}};
  Matrix s = m.SelectRows(std::vector<int>{1, 1});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 1), 2);
  EXPECT_EQ(s(1, 1), 2);
}

TEST(MatrixTest, ElementwiseAddSub) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  Matrix sum = a + b;
  Matrix diff = a - b;
  EXPECT_EQ(sum(0, 0), 5);
  EXPECT_EQ(sum(1, 1), 5);
  EXPECT_EQ(diff(0, 0), -3);
  EXPECT_EQ(diff(1, 1), 3);
}

TEST(MatrixTest, ScalarMultiply) {
  Matrix a{{1, -2}};
  Matrix b = 2.0 * a;
  Matrix c = a * 0.5;
  EXPECT_EQ(b(0, 1), -4);
  EXPECT_EQ(c(0, 0), 0.5);
}

TEST(MatrixTest, HadamardInPlace) {
  Matrix a{{2, 3}};
  Matrix b{{4, 5}};
  a.HadamardInPlace(b);
  EXPECT_EQ(a(0, 0), 8);
  EXPECT_EQ(a(0, 1), 15);
}

TEST(MatrixTest, Axpy) {
  Matrix a{{1, 1}};
  Matrix b{{2, 4}};
  a.Axpy(0.5, b);
  EXPECT_EQ(a(0, 0), 2);
  EXPECT_EQ(a(0, 1), 3);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m{{3, 4}};
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, MaxAbs) {
  Matrix m{{-7, 3}, {2, 5}};
  EXPECT_EQ(m.MaxAbs(), 7);
}

TEST(MatrixTest, AllCloseRespectsTolerance) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.0 + 1e-10, 2.0}};
  EXPECT_TRUE(a.AllClose(b, 1e-9));
  EXPECT_FALSE(a.AllClose(b, 1e-11));
}

TEST(MatrixTest, AllCloseShapeMismatchIsFalse) {
  Matrix a(1, 2), b(2, 1);
  EXPECT_FALSE(a.AllClose(b, 1.0));
}

TEST(MatrixTest, ToStringTruncates) {
  Matrix m(10, 20, 1.0);
  const std::string s = m.ToString(2, 3);
  EXPECT_NE(s.find("10x20"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(MatrixDeathTest, RaggedInitializerAborts) {
  EXPECT_DEATH((Matrix{{1, 2}, {3}}), "ragged");
}

TEST(MatrixDeathTest, ShapeMismatchAddAborts) {
  Matrix a(1, 2), b(2, 2);
  EXPECT_DEATH(a += b, "CHECK failed");
}

}  // namespace
}  // namespace mcirbm::linalg
