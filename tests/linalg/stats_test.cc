#include "linalg/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mcirbm::linalg {
namespace {

TEST(ColumnStatsTest, MeanAndStddev) {
  Matrix m{{1, 10}, {3, 10}, {5, 10}};
  const ColumnStats stats = ComputeColumnStats(m);
  EXPECT_DOUBLE_EQ(stats.mean[0], 3);
  EXPECT_DOUBLE_EQ(stats.mean[1], 10);
  EXPECT_NEAR(stats.stddev[0], std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.stddev[1], 0);
}

TEST(ColumnStatsTest, SingleRowHasZeroStddev) {
  Matrix m{{5, -3}};
  const ColumnStats stats = ComputeColumnStats(m);
  EXPECT_DOUBLE_EQ(stats.mean[0], 5);
  EXPECT_DOUBLE_EQ(stats.stddev[1], 0);
}

TEST(ColumnRangeTest, MinMaxPerColumn) {
  Matrix m{{1, 5}, {-2, 7}, {0, 6}};
  const ColumnRange range = ComputeColumnRange(m);
  EXPECT_DOUBLE_EQ(range.min[0], -2);
  EXPECT_DOUBLE_EQ(range.max[0], 1);
  EXPECT_DOUBLE_EQ(range.min[1], 5);
  EXPECT_DOUBLE_EQ(range.max[1], 7);
}

TEST(ScalarStatsTest, MeanVarianceStdDev) {
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(Mean(xs), 5);
  EXPECT_DOUBLE_EQ(Variance(xs), 4);
  EXPECT_DOUBLE_EQ(StdDev(xs), 2);
}

TEST(ScalarStatsTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(Mean({}), 0);
  EXPECT_DOUBLE_EQ(Variance({}), 0);
  EXPECT_DOUBLE_EQ(Variance({3.0}), 0);
}

TEST(PercentileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 50), 2);
}

TEST(PercentileTest, InterpolatesBetweenValues) {
  EXPECT_DOUBLE_EQ(Percentile({0, 10}, 25), 2.5);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> xs = {5, 1, 9};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 9);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 30), 7);
}

TEST(PercentileTest, InputNotMutated) {
  std::vector<double> xs = {3, 1, 2};
  Percentile(xs, 50);
  EXPECT_EQ(xs[0], 3);  // copy semantics
}

}  // namespace
}  // namespace mcirbm::linalg
