#include "linalg/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "rng/rng.h"

namespace mcirbm::linalg {
namespace {

Matrix RandomMatrix(std::size_t r, std::size_t c, rng::Rng* rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng->Gaussian();
  return m;
}

// Reference O(mnk) GEMM with no blocking, used as ground truth.
Matrix NaiveGemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (std::size_t p = 0; p < a.cols(); ++p) s += a(i, p) * b(p, j);
      c(i, j) = s;
    }
  }
  return c;
}

TEST(GemmTest, SmallKnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  Matrix c = Gemm(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(GemmTest, IdentityIsNeutral) {
  rng::Rng rng(1);
  Matrix a = RandomMatrix(5, 5, &rng);
  Matrix id(5, 5);
  for (int i = 0; i < 5; ++i) id(i, i) = 1;
  EXPECT_TRUE(Gemm(a, id).AllClose(a, 1e-12));
  EXPECT_TRUE(Gemm(id, a).AllClose(a, 1e-12));
}

// Property sweep: blocked GEMM variants agree with the naive reference
// across awkward shapes (non-multiples of the block size, thin, wide).
class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  rng::Rng rng(1000 + m * 97 + k * 13 + n);
  Matrix a = RandomMatrix(m, k, &rng);
  Matrix b = RandomMatrix(k, n, &rng);
  EXPECT_TRUE(Gemm(a, b).AllClose(NaiveGemm(a, b), 1e-9));
}

TEST_P(GemmShapeTest, TransAMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  rng::Rng rng(2000 + m * 97 + k * 13 + n);
  Matrix a = RandomMatrix(k, m, &rng);  // will be transposed
  Matrix b = RandomMatrix(k, n, &rng);
  EXPECT_TRUE(
      GemmTransA(a, b).AllClose(NaiveGemm(a.Transposed(), b), 1e-9));
}

TEST_P(GemmShapeTest, TransBMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  rng::Rng rng(3000 + m * 97 + k * 13 + n);
  Matrix a = RandomMatrix(m, k, &rng);
  Matrix b = RandomMatrix(n, k, &rng);  // will be transposed
  EXPECT_TRUE(
      GemmTransB(a, b).AllClose(NaiveGemm(a, b.Transposed()), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(7, 64, 9), std::make_tuple(65, 3, 64),
                      std::make_tuple(64, 64, 64),
                      std::make_tuple(100, 17, 65),
                      std::make_tuple(2, 129, 1)));

TEST(AccumulateGemmTransATest, AddsScaledProduct) {
  rng::Rng rng(4);
  Matrix a = RandomMatrix(6, 3, &rng);
  Matrix b = RandomMatrix(6, 4, &rng);
  Matrix out(3, 4, 1.0);
  AccumulateGemmTransA(2.0, a, b, &out);
  Matrix expected = NaiveGemm(a.Transposed(), b) * 2.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected.data()[i] += 1.0;
  }
  EXPECT_TRUE(out.AllClose(expected, 1e-9));
}

TEST(MatVecTest, MatchesGemm) {
  rng::Rng rng(5);
  Matrix a = RandomMatrix(4, 3, &rng);
  std::vector<double> x = {1, -2, 0.5};
  const auto y = MatVec(a, x);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(y[i], a(i, 0) - 2 * a(i, 1) + 0.5 * a(i, 2), 1e-12);
  }
}

TEST(MatTVecTest, MatchesTransposedMatVec) {
  rng::Rng rng(6);
  Matrix a = RandomMatrix(4, 3, &rng);
  std::vector<double> x = {1, 2, 3, 4};
  const auto y = MatTVec(a, x);
  const auto ref = MatVec(a.Transposed(), x);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(y[j], ref[j], 1e-12);
}

TEST(AddRowVectorTest, AddsToEveryRow) {
  Matrix m(2, 3, 1.0);
  AddRowVector(&m, {1, 2, 3});
  EXPECT_EQ(m(0, 0), 2);
  EXPECT_EQ(m(1, 2), 4);
}

TEST(ReductionTest, ColSumsMeansRowSums) {
  Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const auto cs = ColSums(m);
  EXPECT_DOUBLE_EQ(cs[0], 9);
  EXPECT_DOUBLE_EQ(cs[1], 12);
  const auto cm = ColMeans(m);
  EXPECT_DOUBLE_EQ(cm[0], 3);
  const auto rs = RowSums(m);
  EXPECT_DOUBLE_EQ(rs[2], 11);
}

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0), 0.5);
  EXPECT_NEAR(Sigmoid(2), 1.0 / (1.0 + std::exp(-2)), 1e-15);
}

TEST(SigmoidTest, StableAtExtremes) {
  EXPECT_NEAR(Sigmoid(1000), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000), 0.0, 1e-12);
  EXPECT_FALSE(std::isnan(Sigmoid(-1e308)));
}

TEST(SigmoidTest, SymmetryProperty) {
  for (double x : {0.1, 0.7, 3.0, 17.0}) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0, 1e-12);
  }
}

TEST(SigmoidInPlaceTest, MapsWholeMatrix) {
  Matrix m{{0, 100}, {-100, 0}};
  SigmoidInPlace(&m);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
  EXPECT_NEAR(m(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(m(1, 0), 0.0, 1e-12);
}

TEST(SigmoidDerivTest, MatchesFormula) {
  Matrix a{{0.2, 0.5, 0.9}};
  Matrix d = SigmoidDeriv(a);
  EXPECT_NEAR(d(0, 0), 0.16, 1e-12);
  EXPECT_NEAR(d(0, 1), 0.25, 1e-12);
  EXPECT_NEAR(d(0, 2), 0.09, 1e-12);
}

TEST(SquaredDistanceTest, BasicAndZero) {
  std::vector<double> a = {1, 2}, b = {4, 6};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25);
  EXPECT_DOUBLE_EQ(SquaredDistance(a, a), 0);
}

TEST(PairwiseSquaredDistancesTest, MatchesDirectComputation) {
  rng::Rng rng(7);
  Matrix m = RandomMatrix(10, 5, &rng);
  Matrix d = PairwiseSquaredDistances(m);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(d(i, i), 0.0);
    for (std::size_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(d(i, j), SquaredDistance(m.Row(i), m.Row(j)), 1e-8);
      EXPECT_DOUBLE_EQ(d(i, j), d(j, i));
    }
  }
}

TEST(PairwiseSquaredDistancesTest, NonNegativeUnderCancellation) {
  // Nearly identical rows exercise the numeric guard against negative
  // values from the |a|²+|b|²−2ab expansion.
  Matrix m(2, 3, 1e8);
  m(1, 2) += 1e-4;
  Matrix d = PairwiseSquaredDistances(m);
  EXPECT_GE(d(0, 1), 0.0);
}

TEST(DotTest, Basic) {
  std::vector<double> a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32);
}

TEST(ApplyTest, ElementwiseMap) {
  Matrix m{{1, 4}, {9, 16}};
  Apply(&m, [](double v) { return std::sqrt(v); });
  EXPECT_DOUBLE_EQ(m(1, 0), 3);
}

}  // namespace
}  // namespace mcirbm::linalg
