#include "metrics/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "rng/rng.h"

namespace mcirbm::metrics {
namespace {

double AssignmentWeight(const std::vector<std::vector<double>>& w,
                        const std::vector<int>& match) {
  double total = 0;
  for (std::size_t r = 0; r < match.size(); ++r) {
    if (match[r] >= 0) total += w[r][match[r]];
  }
  return total;
}

// Brute-force optimal assignment by permuting the smaller side.
double BruteForceBest(const std::vector<std::vector<double>>& w) {
  const int rows = static_cast<int>(w.size());
  const int cols = static_cast<int>(w[0].size());
  if (rows <= cols) {
    std::vector<int> cols_perm(cols);
    std::iota(cols_perm.begin(), cols_perm.end(), 0);
    double best = -1e300;
    do {
      double total = 0;
      for (int r = 0; r < rows; ++r) total += w[r][cols_perm[r]];
      best = std::max(best, total);
    } while (std::next_permutation(cols_perm.begin(), cols_perm.end()));
    return best;
  }
  std::vector<int> rows_perm(rows);
  std::iota(rows_perm.begin(), rows_perm.end(), 0);
  double best = -1e300;
  do {
    double total = 0;
    for (int c = 0; c < cols; ++c) total += w[rows_perm[c]][c];
    best = std::max(best, total);
  } while (std::next_permutation(rows_perm.begin(), rows_perm.end()));
  return best;
}

TEST(HungarianTest, IdentityIsOptimalOnDiagonalMatrix) {
  const std::vector<std::vector<double>> w = {
      {10, 1, 1}, {1, 10, 1}, {1, 1, 10}};
  const auto match = MaxWeightAssignment(w);
  EXPECT_EQ(match, (std::vector<int>{0, 1, 2}));
}

TEST(HungarianTest, AntiDiagonalOptimal) {
  const std::vector<std::vector<double>> w = {{1, 9}, {9, 1}};
  const auto match = MaxWeightAssignment(w);
  EXPECT_EQ(match, (std::vector<int>{1, 0}));
}

TEST(HungarianTest, SingleCell) {
  const auto match =
      MaxWeightAssignment(std::vector<std::vector<double>>{{5.0}});
  EXPECT_EQ(match, (std::vector<int>{0}));
}

TEST(HungarianTest, WideMatrixMatchesAllRows) {
  const std::vector<std::vector<double>> w = {{1, 5, 2, 0},
                                              {7, 1, 3, 2}};
  const auto match = MaxWeightAssignment(w);
  EXPECT_EQ(match[0], 1);
  EXPECT_EQ(match[1], 0);
}

TEST(HungarianTest, TallMatrixLeavesRowsUnmatched) {
  const std::vector<std::vector<double>> w = {{9, 0}, {8, 0}, {0, 7}};
  const auto match = MaxWeightAssignment(w);
  int unmatched = 0;
  for (int m : match) unmatched += m < 0;
  EXPECT_EQ(unmatched, 1);
  EXPECT_NEAR(AssignmentWeight(w, match), 16, 1e-12);
}

TEST(HungarianTest, EachColumnUsedAtMostOnce) {
  const std::vector<std::vector<double>> w = {
      {5, 5, 5}, {5, 5, 5}, {5, 5, 5}};
  const auto match = MaxWeightAssignment(w);
  std::vector<int> used;
  for (int m : match) {
    if (m >= 0) used.push_back(m);
  }
  std::sort(used.begin(), used.end());
  EXPECT_EQ(std::adjacent_find(used.begin(), used.end()), used.end());
}

TEST(HungarianTest, IntegerOverloadMatchesDouble) {
  const std::vector<std::vector<int>> wi = {{3, 1}, {2, 4}};
  const std::vector<std::vector<double>> wd = {{3, 1}, {2, 4}};
  EXPECT_EQ(MaxWeightAssignment(wi), MaxWeightAssignment(wd));
}

// Property sweep: Hungarian equals brute force on random instances.
class HungarianRandomTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(HungarianRandomTest, MatchesBruteForce) {
  const auto [rows, cols, seed] = GetParam();
  rng::Rng rng(seed);
  std::vector<std::vector<double>> w(rows, std::vector<double>(cols));
  for (auto& row : w) {
    for (auto& cell : row) cell = rng.Uniform(0, 100);
  }
  const auto match = MaxWeightAssignment(w);
  EXPECT_NEAR(AssignmentWeight(w, match), BruteForceBest(w), 1e-9)
      << rows << "x" << cols << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    RandomInstances, HungarianRandomTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 6),
                       ::testing::Values(2, 4, 6),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace mcirbm::metrics
