#include "metrics/internal.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "rng/rng.h"

namespace mcirbm::metrics {
namespace {

using linalg::Matrix;

// Two well-separated 2-D blobs around (0,0) and (10,10).
Matrix TwoBlobs(std::size_t per_blob, double spread, rng::Rng* rng,
                std::vector<int>* labels) {
  Matrix x(2 * per_blob, 2);
  labels->assign(2 * per_blob, 0);
  for (std::size_t i = 0; i < per_blob; ++i) {
    x(i, 0) = rng->Gaussian(0, spread);
    x(i, 1) = rng->Gaussian(0, spread);
    (*labels)[i] = 0;
    x(per_blob + i, 0) = rng->Gaussian(10, spread);
    x(per_blob + i, 1) = rng->Gaussian(10, spread);
    (*labels)[per_blob + i] = 1;
  }
  return x;
}

TEST(SilhouetteTest, PerfectSeparationIsNearOne) {
  rng::Rng rng(3);
  std::vector<int> labels;
  const Matrix x = TwoBlobs(30, 0.1, &rng, &labels);
  EXPECT_GT(SilhouetteScore(x, labels), 0.95);
}

TEST(SilhouetteTest, RandomAssignmentIsNearZeroOrNegative) {
  rng::Rng rng(5);
  std::vector<int> labels;
  const Matrix x = TwoBlobs(40, 0.1, &rng, &labels);
  std::vector<int> random(labels.size());
  for (auto& v : random) v = static_cast<int>(rng.UniformIndex(2));
  EXPECT_LT(SilhouetteScore(x, random), 0.2);
}

TEST(SilhouetteTest, IgnoresUnassignedInstances) {
  rng::Rng rng(7);
  std::vector<int> labels;
  const Matrix x = TwoBlobs(20, 0.1, &rng, &labels);
  std::vector<int> with_holes = labels;
  // Park a few points mid-way and mark them unassigned; they must not
  // drag the score down.
  with_holes[0] = -1;
  with_holes[25] = -1;
  const double full = SilhouetteScore(x, labels);
  const double holey = SilhouetteScore(x, with_holes);
  EXPECT_NEAR(full, holey, 0.05);
}

TEST(SilhouetteTest, SingletonClusterContributesZero) {
  Matrix x{{0, 0}, {0.1, 0}, {10, 10}};
  const std::vector<int> a = {0, 0, 1};
  // Points 0,1 have silhouette ~1, the singleton contributes 0.
  EXPECT_NEAR(SilhouetteScore(x, a), 2.0 / 3.0, 0.01);
}

TEST(DaviesBouldinTest, TightSeparatedBlobsScoreLow) {
  rng::Rng rng(11);
  std::vector<int> labels;
  const Matrix x = TwoBlobs(30, 0.1, &rng, &labels);
  EXPECT_LT(DaviesBouldinIndex(x, labels), 0.1);
}

TEST(DaviesBouldinTest, WorseAssignmentScoresHigher) {
  rng::Rng rng(13);
  std::vector<int> labels;
  const Matrix x = TwoBlobs(30, 0.5, &rng, &labels);
  std::vector<int> shuffled = labels;
  // Swap half of each blob: clusters now straddle both blobs.
  for (std::size_t i = 0; i < 15; ++i) {
    std::swap(shuffled[i], shuffled[30 + i]);
  }
  EXPECT_GT(DaviesBouldinIndex(x, shuffled),
            DaviesBouldinIndex(x, labels) * 2);
}

TEST(CalinskiHarabaszTest, SeparationIncreasesScore) {
  rng::Rng rng(17);
  std::vector<int> labels_near, labels_far;
  Matrix near(40, 2), far(40, 2);
  for (std::size_t i = 0; i < 20; ++i) {
    near(i, 0) = rng.Gaussian(0, 1);
    near(i, 1) = rng.Gaussian(0, 1);
    near(20 + i, 0) = rng.Gaussian(2, 1);
    near(20 + i, 1) = rng.Gaussian(2, 1);
    far(i, 0) = rng.Gaussian(0, 1);
    far(i, 1) = rng.Gaussian(0, 1);
    far(20 + i, 0) = rng.Gaussian(20, 1);
    far(20 + i, 1) = rng.Gaussian(20, 1);
  }
  std::vector<int> labels(40, 0);
  for (std::size_t i = 20; i < 40; ++i) labels[i] = 1;
  EXPECT_GT(CalinskiHarabaszIndex(far, labels),
            10 * CalinskiHarabaszIndex(near, labels));
}

TEST(SseTest, WithinPlusBetweenEqualsTotal) {
  rng::Rng rng(19);
  std::vector<int> labels;
  const Matrix x = TwoBlobs(25, 1.0, &rng, &labels);
  const double within = WithinClusterSse(x, labels);
  const double between = BetweenClusterSse(x, labels);
  // Total SSE around the global mean.
  std::vector<double> mean(2, 0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    mean[0] += x(i, 0);
    mean[1] += x(i, 1);
  }
  mean[0] /= static_cast<double>(x.rows());
  mean[1] /= static_cast<double>(x.rows());
  double total = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double d0 = x(i, 0) - mean[0];
    const double d1 = x(i, 1) - mean[1];
    total += d0 * d0 + d1 * d1;
  }
  EXPECT_NEAR(within + between, total, 1e-6 * total);
}

TEST(SseTest, PerfectClusteringHasZeroWithin) {
  Matrix x{{1, 1}, {1, 1}, {5, 5}};
  const std::vector<int> a = {0, 0, 1};
  EXPECT_NEAR(WithinClusterSse(x, a), 0.0, 1e-12);
  EXPECT_GT(BetweenClusterSse(x, a), 0.0);
}

TEST(InternalBundleTest, AllFieldsPopulated) {
  rng::Rng rng(23);
  std::vector<int> labels;
  const Matrix x = TwoBlobs(20, 0.2, &rng, &labels);
  const InternalMetricBundle b = ComputeInternal(x, labels);
  EXPECT_GT(b.silhouette, 0.9);
  EXPECT_LT(b.davies_bouldin, 0.2);
  EXPECT_GT(b.calinski_harabasz, 100);
  EXPECT_GT(b.between_sse, b.within_sse);
}

// Property sweep: for k tight well-separated blobs the silhouette stays
// high and CH grows with n.
class InternalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(InternalPropertyTest, SeparatedBlobsScoreWell) {
  const int k = GetParam();
  rng::Rng rng(100 + k);
  const std::size_t per = 15;
  Matrix x(per * k, 2);
  std::vector<int> labels(per * k);
  for (int c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per; ++i) {
      const std::size_t r = c * per + i;
      x(r, 0) = rng.Gaussian(c * 25.0, 0.3);
      x(r, 1) = rng.Gaussian(0, 0.3);
      labels[r] = c;
    }
  }
  EXPECT_GT(SilhouetteScore(x, labels), 0.9) << "k=" << k;
  EXPECT_LT(DaviesBouldinIndex(x, labels), 0.2) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(KSweep, InternalPropertyTest,
                         ::testing::Values(2, 3, 4, 5, 7));

}  // namespace
}  // namespace mcirbm::metrics
