// Tests for the extended external metrics: Jaccard, homogeneity,
// completeness, V-measure. The paper metrics are covered in
// external_test.cc; here we pin the extensions' known values and
// invariants.
#include <gtest/gtest.h>

#include "metrics/external.h"
#include "rng/rng.h"

namespace mcirbm::metrics {
namespace {

TEST(JaccardTest, IdenticalPartitionsScoreOne) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(JaccardIndex(a, a), 1.0);
}

TEST(JaccardTest, LabelPermutationInvariant) {
  const std::vector<int> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<int> pred = {2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(JaccardIndex(truth, pred), 1.0);
}

TEST(JaccardTest, DisjointPairStructureScoresZero) {
  // truth groups {0,1},{2,3}; pred groups {0,2},{1,3}: no common pair.
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<int> pred = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(JaccardIndex(truth, pred), 0.0);
}

TEST(JaccardTest, KnownHandComputedValue) {
  // truth {0,1,2} vs pred {0,1},{2}: TP pairs = C(2,2)=1 among {0,1}.
  // truth has all three together: truth pairs = 3. pred pairs = 1.
  // TP=1, FN=2, FP=0 -> J = 1/3.
  const std::vector<int> truth = {0, 0, 0};
  const std::vector<int> pred = {0, 0, 1};
  EXPECT_NEAR(JaccardIndex(truth, pred), 1.0 / 3.0, 1e-12);
}

TEST(JaccardTest, AllSingletonsBothSidesIsTrivialMatch) {
  const std::vector<int> truth = {0, 1, 2, 3};
  const std::vector<int> pred = {3, 2, 1, 0};
  EXPECT_DOUBLE_EQ(JaccardIndex(truth, pred), 1.0);
}

TEST(HomogeneityTest, PureClustersScoreOne) {
  // Each cluster holds one class (over-segmented truth is fine).
  const std::vector<int> truth = {0, 0, 0, 1, 1, 1};
  const std::vector<int> pred = {0, 0, 1, 2, 2, 3};
  EXPECT_NEAR(Homogeneity(truth, pred), 1.0, 1e-12);
}

TEST(HomogeneityTest, MixedClusterScoresBelowOne) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<int> pred = {0, 0, 0, 0};
  EXPECT_LT(Homogeneity(truth, pred), 0.01);
}

TEST(CompletenessTest, OneClusterPerClassScoresOne) {
  // Each class lands in a single cluster (under-segmentation is fine).
  const std::vector<int> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<int> pred = {0, 0, 0, 0, 1, 1};
  EXPECT_NEAR(Completeness(truth, pred), 1.0, 1e-12);
}

TEST(CompletenessTest, SplitClassScoresBelowOne) {
  const std::vector<int> truth = {0, 0, 0, 0};
  const std::vector<int> pred = {0, 0, 1, 1};
  EXPECT_LT(Completeness(truth, pred), 0.01);
}

TEST(VMeasureTest, PerfectPartitionScoresOne) {
  const std::vector<int> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<int> pred = {1, 1, 2, 2, 0, 0};
  EXPECT_NEAR(VMeasure(truth, pred), 1.0, 1e-12);
}

TEST(VMeasureTest, SymmetricInArguments) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2, 0, 1};
  const std::vector<int> b = {0, 1, 1, 1, 2, 0, 0, 2};
  EXPECT_NEAR(VMeasure(a, b), VMeasure(b, a), 1e-12);
}

TEST(VMeasureTest, HarmonicMeanOfComponents) {
  const std::vector<int> truth = {0, 0, 1, 1, 2, 2, 0, 1};
  const std::vector<int> pred = {0, 1, 1, 1, 2, 0, 0, 2};
  const double h = Homogeneity(truth, pred);
  const double c = Completeness(truth, pred);
  EXPECT_NEAR(VMeasure(truth, pred), 2 * h * c / (h + c), 1e-12);
}

TEST(VMeasureTest, TrivialSingleClassAndCluster) {
  const std::vector<int> truth = {0, 0, 0};
  const std::vector<int> pred = {0, 0, 0};
  EXPECT_DOUBLE_EQ(Homogeneity(truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(Completeness(truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(VMeasure(truth, pred), 1.0);
}

// Random-partition properties: all extended metrics stay in bounds and
// are invariant to relabeling.
class ExternalExtraPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExternalExtraPropertyTest, BoundsAndRelabelInvariance) {
  rng::Rng rng(400 + GetParam());
  const std::size_t n = 40;
  std::vector<int> truth(n), pred(n);
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<int>(rng.UniformIndex(4));
    pred[i] = static_cast<int>(rng.UniformIndex(3));
  }
  const double j = JaccardIndex(truth, pred);
  const double h = Homogeneity(truth, pred);
  const double c = Completeness(truth, pred);
  const double v = VMeasure(truth, pred);
  EXPECT_GE(j, 0.0);
  EXPECT_LE(j, 1.0);
  EXPECT_GE(h, -1e-12);
  EXPECT_LE(h, 1.0 + 1e-12);
  EXPECT_GE(c, -1e-12);
  EXPECT_LE(c, 1.0 + 1e-12);
  EXPECT_GE(v, -1e-12);
  EXPECT_LE(v, 1.0 + 1e-12);

  // Relabel pred ids (0<->2) — every metric must be unchanged.
  std::vector<int> relabeled = pred;
  for (auto& id : relabeled) {
    if (id == 0) {
      id = 2;
    } else if (id == 2) {
      id = 0;
    }
  }
  EXPECT_NEAR(JaccardIndex(truth, relabeled), j, 1e-12);
  EXPECT_NEAR(Homogeneity(truth, relabeled), h, 1e-12);
  EXPECT_NEAR(Completeness(truth, relabeled), c, 1e-12);
  EXPECT_NEAR(VMeasure(truth, relabeled), v, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExternalExtraPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace mcirbm::metrics
