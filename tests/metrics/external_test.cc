#include "metrics/external.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rng/rng.h"

namespace mcirbm::metrics {
namespace {

const std::vector<int> kTruth = {0, 0, 0, 1, 1, 1, 2, 2};

TEST(AccuracyTest, PerfectClusteringIsOne) {
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(kTruth, kTruth), 1.0);
}

TEST(AccuracyTest, InvariantToClusterIdPermutation) {
  const std::vector<int> relabeled = {2, 2, 2, 0, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(kTruth, relabeled), 1.0);
}

TEST(AccuracyTest, KnownPartialMatch) {
  // One instance of class 0 lands in the class-1 cluster.
  const std::vector<int> pred = {0, 0, 1, 1, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(kTruth, pred), 7.0 / 8.0);
}

TEST(AccuracyTest, SingleClusterGetsMajorityClassShare) {
  const std::vector<int> pred(kTruth.size(), 0);
  // Optimal map: the single cluster -> the largest class (size 3 of 8).
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(kTruth, pred), 3.0 / 8.0);
}

TEST(AccuracyTest, MoreClustersThanClassesUsesInjectiveMap) {
  // Class 0 split into clusters 0 and 3: only one piece can map to it.
  const std::vector<int> truth = {0, 0, 0, 0, 1, 1};
  const std::vector<int> pred = {0, 0, 3, 3, 1, 1};
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(truth, pred), 4.0 / 6.0);
}

TEST(PurityTest, PerfectIsOne) {
  EXPECT_DOUBLE_EQ(Purity(kTruth, kTruth), 1.0);
}

TEST(PurityTest, SingleClusterIsMajorityFraction) {
  const std::vector<int> pred(kTruth.size(), 0);
  EXPECT_DOUBLE_EQ(Purity(kTruth, pred), 3.0 / 8.0);
}

TEST(PurityTest, SingletonsGivePurityOne) {
  std::vector<int> pred(kTruth.size());
  for (std::size_t i = 0; i < pred.size(); ++i) pred[i] = static_cast<int>(i);
  EXPECT_DOUBLE_EQ(Purity(kTruth, pred), 1.0);
}

TEST(PurityTest, AtLeastAccuracy) {
  rng::Rng rng(3);
  std::vector<int> pred(kTruth.size());
  for (auto& p : pred) p = static_cast<int>(rng.UniformIndex(3));
  EXPECT_GE(Purity(kTruth, pred) + 1e-12,
            ClusteringAccuracy(kTruth, pred));
}

TEST(RandIndexTest, PerfectIsOne) {
  EXPECT_DOUBLE_EQ(RandIndex(kTruth, kTruth), 1.0);
}

TEST(RandIndexTest, KnownSmallCase) {
  // truth: {a,b | c}, pred: {a | b,c}
  const std::vector<int> truth = {0, 0, 1};
  const std::vector<int> pred = {0, 1, 1};
  // Pairs: (a,b): same/diff; (a,c): diff/diff; (b,c): diff/same.
  // Agreements: 1 of 3.
  EXPECT_NEAR(RandIndex(truth, pred), 1.0 / 3.0, 1e-12);
}

TEST(RandIndexTest, SymmetricInArguments) {
  const std::vector<int> a = {0, 0, 1, 1, 2};
  const std::vector<int> b = {0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(RandIndex(a, b), RandIndex(b, a));
}

TEST(FmiTest, PerfectIsOne) {
  EXPECT_DOUBLE_EQ(FowlkesMallows(kTruth, kTruth), 1.0);
}

TEST(FmiTest, KnownSmallCase) {
  const std::vector<int> truth = {0, 0, 1, 1};
  const std::vector<int> pred = {0, 1, 0, 1};
  // TP=0 -> FMI = 0.
  EXPECT_DOUBLE_EQ(FowlkesMallows(truth, pred), 0.0);
}

TEST(FmiTest, GeometricMeanOfPrecisionRecall) {
  const std::vector<int> truth = {0, 0, 0, 1, 1, 1};
  const std::vector<int> pred = {0, 0, 1, 1, 1, 1};
  // TP = C(2,2)+C(3,2) = 1+3 = 4; cluster pairs = C(2,2)+C(4,2)=1+6=7;
  // class pairs = 3+3=6. FMI = sqrt(4/7 * 4/6).
  EXPECT_NEAR(FowlkesMallows(truth, pred),
              std::sqrt(4.0 / 7.0 * 4.0 / 6.0), 1e-12);
}

TEST(AriTest, PerfectIsOne) {
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(kTruth, kTruth), 1.0);
}

TEST(AriTest, RandomLabelingNearZero) {
  rng::Rng rng(11);
  const int n = 3000;
  std::vector<int> truth(n), pred(n);
  for (int i = 0; i < n; ++i) {
    truth[i] = static_cast<int>(rng.UniformIndex(3));
    pred[i] = static_cast<int>(rng.UniformIndex(3));
  }
  EXPECT_NEAR(AdjustedRandIndex(truth, pred), 0.0, 0.02);
}

TEST(NmiTest, PerfectIsOne) {
  EXPECT_NEAR(NormalizedMutualInformation(kTruth, kTruth), 1.0, 1e-12);
}

TEST(NmiTest, IndependentPartitionsNearZero) {
  rng::Rng rng(13);
  const int n = 5000;
  std::vector<int> truth(n), pred(n);
  for (int i = 0; i < n; ++i) {
    truth[i] = static_cast<int>(rng.UniformIndex(4));
    pred[i] = static_cast<int>(rng.UniformIndex(4));
  }
  EXPECT_LT(NormalizedMutualInformation(truth, pred), 0.01);
}

TEST(MetricRangeTest, AllMetricsInExpectedRanges) {
  rng::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> truth(50), pred(50);
    for (int i = 0; i < 50; ++i) {
      truth[i] = static_cast<int>(rng.UniformIndex(4));
      pred[i] = static_cast<int>(rng.UniformIndex(1 + trial % 6));
    }
    const MetricBundle m = ComputeAll(truth, pred);
    EXPECT_GE(m.accuracy, 0);
    EXPECT_LE(m.accuracy, 1);
    EXPECT_GE(m.purity, 0);
    EXPECT_LE(m.purity, 1);
    EXPECT_GE(m.rand_index, 0);
    EXPECT_LE(m.rand_index, 1);
    EXPECT_GE(m.fmi, 0);
    EXPECT_LE(m.fmi, 1);
    EXPECT_GE(m.ari, -1);
    EXPECT_LE(m.ari, 1);
    EXPECT_GE(m.nmi, 0);
    EXPECT_LE(m.nmi, 1 + 1e-12);
  }
}

TEST(MetricsTest, NonCompactIdsHandled) {
  const std::vector<int> truth = {10, 10, 20, 20};
  const std::vector<int> pred = {7, 7, 3, 3};
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(truth, pred), 1.0);
  EXPECT_DOUBLE_EQ(RandIndex(truth, pred), 1.0);
}

TEST(MetricsDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH(ClusteringAccuracy({0, 1}, {0}), "CHECK failed");
}

TEST(MetricsDeathTest, EmptyInputAborts) {
  EXPECT_DEATH(ClusteringAccuracy({}, {}), "CHECK failed");
}


// ---- Property sweep over random partitions ----

class MetricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricPropertyTest, PairMetricsAreSymmetric) {
  rng::Rng rng(400 + GetParam());
  std::vector<int> a(40), b(40);
  for (int i = 0; i < 40; ++i) {
    a[i] = static_cast<int>(rng.UniformIndex(3));
    b[i] = static_cast<int>(rng.UniformIndex(4));
  }
  EXPECT_DOUBLE_EQ(RandIndex(a, b), RandIndex(b, a));
  EXPECT_DOUBLE_EQ(FowlkesMallows(a, b), FowlkesMallows(b, a));
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), AdjustedRandIndex(b, a));
  EXPECT_NEAR(NormalizedMutualInformation(a, b),
              NormalizedMutualInformation(b, a), 1e-12);
}

TEST_P(MetricPropertyTest, RefiningAPartitionNeverLowersPurity) {
  rng::Rng rng(500 + GetParam());
  std::vector<int> truth(60), coarse(60), fine(60);
  for (int i = 0; i < 60; ++i) {
    truth[i] = static_cast<int>(rng.UniformIndex(3));
    coarse[i] = static_cast<int>(rng.UniformIndex(3));
    // fine = coarse split further by parity of the index.
    fine[i] = coarse[i] * 2 + (i % 2);
  }
  EXPECT_GE(Purity(truth, fine) + 1e-12, Purity(truth, coarse));
}

TEST_P(MetricPropertyTest, AccuracyInvariantUnderConsistentRelabeling) {
  rng::Rng rng(600 + GetParam());
  std::vector<int> truth(50), pred(50), relabeled(50);
  const int perm[4] = {2, 3, 1, 0};
  for (int i = 0; i < 50; ++i) {
    truth[i] = static_cast<int>(rng.UniformIndex(4));
    pred[i] = static_cast<int>(rng.UniformIndex(4));
    relabeled[i] = perm[pred[i]];
  }
  EXPECT_DOUBLE_EQ(ClusteringAccuracy(truth, pred),
                   ClusteringAccuracy(truth, relabeled));
  EXPECT_DOUBLE_EQ(Purity(truth, pred), Purity(truth, relabeled));
  EXPECT_DOUBLE_EQ(RandIndex(truth, pred), RandIndex(truth, relabeled));
}

TEST_P(MetricPropertyTest, AccuracyNeverExceedsPurity) {
  rng::Rng rng(700 + GetParam());
  std::vector<int> truth(45), pred(45);
  for (int i = 0; i < 45; ++i) {
    truth[i] = static_cast<int>(rng.UniformIndex(3));
    pred[i] = static_cast<int>(rng.UniformIndex(2 + GetParam() % 5));
  }
  EXPECT_LE(ClusteringAccuracy(truth, pred), Purity(truth, pred) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomPartitions, MetricPropertyTest,
                         ::testing::Range(0, 10));
}  // namespace
}  // namespace mcirbm::metrics
