// Bit-parity of the parallelized hot kernels across thread counts: every
// result below must be *identical* (not merely close) at 1, 2 and 8
// threads, because shard boundaries and reduction trees are fixed by the
// problem size alone. A failure here means a kernel picked up a
// thread-count-dependent schedule.
#include <gtest/gtest.h>

#include <vector>

#include "clustering/kmeans.h"
#include "data/synthetic.h"
#include "linalg/ops.h"
#include "parallel/thread_pool.h"
#include "rbm/grbm.h"
#include "rbm/rbm.h"
#include "rng/rng.h"

namespace mcirbm {
namespace {

constexpr int kWidths[] = {1, 2, 8};

class ParityTest : public ::testing::Test {
 protected:
  ~ParityTest() override { parallel::SetNumThreads(0); }
};

linalg::Matrix RandomMatrix(std::size_t r, std::size_t c,
                            std::uint64_t seed) {
  rng::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  return m;
}

template <typename Fn>
void ExpectSameMatrixAtAllWidths(const Fn& compute) {
  parallel::SetNumThreads(1);
  const linalg::Matrix reference = compute();
  for (int width : {2, 8}) {
    parallel::SetNumThreads(width);
    const linalg::Matrix got = compute();
    ASSERT_EQ(got.rows(), reference.rows());
    ASSERT_EQ(got.cols(), reference.cols());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got.data()[i], reference.data()[i])
          << "element " << i << " differs at " << width << " threads";
    }
  }
}

TEST_F(ParityTest, GemmVariantsAreBitIdenticalAcrossWidths) {
  const linalg::Matrix a = RandomMatrix(311, 97, 1);
  const linalg::Matrix b = RandomMatrix(97, 53, 2);
  ExpectSameMatrixAtAllWidths([&] { return linalg::Gemm(a, b); });

  const linalg::Matrix at = RandomMatrix(311, 97, 3);
  const linalg::Matrix bt = RandomMatrix(311, 53, 4);
  ExpectSameMatrixAtAllWidths([&] { return linalg::GemmTransA(at, bt); });
  const linalg::Matrix c = RandomMatrix(53, 97, 5);
  ExpectSameMatrixAtAllWidths([&] { return linalg::GemmTransB(a, c); });
}

TEST_F(ParityTest, PairwiseDistancesAndReductionsAreBitIdentical) {
  const linalg::Matrix m = RandomMatrix(401, 37, 6);
  ExpectSameMatrixAtAllWidths(
      [&] { return linalg::PairwiseSquaredDistances(m); });

  parallel::SetNumThreads(1);
  const std::vector<double> col_ref = linalg::ColSums(m);
  const std::vector<double> row_ref = linalg::RowSums(m);
  for (int width : {2, 8}) {
    parallel::SetNumThreads(width);
    EXPECT_EQ(linalg::ColSums(m), col_ref);
    EXPECT_EQ(linalg::RowSums(m), row_ref);
  }
}

TEST_F(ParityTest, KMeansLabelsIdenticalAcrossWidths) {
  data::GaussianMixtureSpec spec;
  spec.name = "parity";
  spec.num_classes = 4;
  spec.num_instances = 600;  // > assignment shard width, so shards matter
  spec.num_features = 12;
  spec.separation = 4.0;
  const data::Dataset ds = data::GenerateGaussianMixture(spec, 11);

  clustering::KMeansConfig cfg;
  cfg.k = 4;
  parallel::SetNumThreads(1);
  const auto reference = clustering::KMeans(cfg).Cluster(ds.x, 5);
  for (int width : {2, 8}) {
    parallel::SetNumThreads(width);
    const auto got = clustering::KMeans(cfg).Cluster(ds.x, 5);
    EXPECT_EQ(got.assignment, reference.assignment)
        << "labels differ at " << width << " threads";
    EXPECT_EQ(got.objective, reference.objective);
    EXPECT_EQ(got.iterations, reference.iterations);
  }
}

TEST_F(ParityTest, FastKMeansModeIsThreadCountInvariant) {
  // deterministic=false trades the serial-reference restart stream for
  // ShardRng substreams; the result must still be identical at any
  // thread count (it depends only on seed and restart index).
  data::GaussianMixtureSpec spec;
  spec.name = "parity-fast";
  spec.num_classes = 3;
  spec.num_instances = 300;
  spec.num_features = 8;
  spec.separation = 4.0;
  const data::Dataset ds = data::GenerateGaussianMixture(spec, 13);

  clustering::KMeansConfig cfg;
  cfg.k = 3;
  parallel::SetDeterministic(false);
  parallel::SetNumThreads(1);
  const auto reference = clustering::KMeans(cfg).Cluster(ds.x, 5);
  for (int width : {2, 8}) {
    parallel::SetNumThreads(width);
    const auto got = clustering::KMeans(cfg).Cluster(ds.x, 5);
    EXPECT_EQ(got.assignment, reference.assignment);
    EXPECT_EQ(got.objective, reference.objective);
  }
  parallel::SetDeterministic(true);
}

template <typename Model>
void ExpectCd1ParityAcrossWidths(const linalg::Matrix& x,
                                 rbm::RbmConfig config) {
  config.num_visible = static_cast<int>(x.cols());
  parallel::SetNumThreads(1);
  Model reference(config);
  reference.Train(x);
  for (int width : {2, 8}) {
    parallel::SetNumThreads(width);
    Model got(config);
    got.Train(x);
    ASSERT_EQ(got.weights().size(), reference.weights().size());
    for (std::size_t i = 0; i < got.weights().size(); ++i) {
      ASSERT_EQ(got.weights().data()[i], reference.weights().data()[i])
          << "weight " << i << " differs at " << width << " threads";
    }
    EXPECT_EQ(got.visible_bias(), reference.visible_bias());
    EXPECT_EQ(got.hidden_bias(), reference.hidden_bias());
  }
}

TEST_F(ParityTest, Cd1WeightUpdatesIdenticalAcrossWidths) {
  // Large enough that the GEMMs, reductions and the weight update all
  // split into several shards.
  linalg::Matrix x = RandomMatrix(320, 48, 21);
  linalg::Matrix binary = x;
  linalg::SigmoidInPlace(&binary);  // map into [0,1] for the binary RBM

  rbm::RbmConfig config;
  config.num_hidden = 40;
  config.epochs = 3;
  config.batch_size = 64;
  config.seed = 9;
  ExpectCd1ParityAcrossWidths<rbm::Rbm>(binary, config);
  ExpectCd1ParityAcrossWidths<rbm::Grbm>(x, config);
}

}  // namespace
}  // namespace mcirbm
