// Bit-parity of the parallelized hot kernels across thread counts: every
// result below must be *identical* (not merely close) at 1, 2 and 8
// threads, because shard boundaries and reduction trees are fixed by the
// problem size alone. A failure here means a kernel picked up a
// thread-count-dependent schedule.
#include <gtest/gtest.h>

#include <vector>

#include "clustering/agglomerative.h"
#include "clustering/gmm.h"
#include "clustering/kmeans.h"
#include "clustering/spectral.h"
#include "core/sls_gradient.h"
#include "data/synthetic.h"
#include "linalg/ops.h"
#include "linalg/pca.h"
#include "parallel/thread_pool.h"
#include "rbm/grbm.h"
#include "rbm/rbm.h"
#include "rbm/sampling.h"
#include "rng/rng.h"

namespace mcirbm {
namespace {

constexpr int kWidths[] = {1, 2, 8};

class ParityTest : public ::testing::Test {
 protected:
  ~ParityTest() override {
    parallel::SetNumThreads(0);
    parallel::SetDeterministic(parallel::DefaultDeterministic());
  }
};

linalg::Matrix RandomMatrix(std::size_t r, std::size_t c,
                            std::uint64_t seed) {
  rng::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.Gaussian();
  return m;
}

template <typename Fn>
void ExpectSameMatrixAtAllWidths(const Fn& compute) {
  parallel::SetNumThreads(1);
  const linalg::Matrix reference = compute();
  for (int width : {2, 4, 8}) {
    parallel::SetNumThreads(width);
    const linalg::Matrix got = compute();
    ASSERT_EQ(got.rows(), reference.rows());
    ASSERT_EQ(got.cols(), reference.cols());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got.data()[i], reference.data()[i])
          << "element " << i << " differs at " << width << " threads";
    }
  }
}

TEST_F(ParityTest, GemmVariantsAreBitIdenticalAcrossWidths) {
  const linalg::Matrix a = RandomMatrix(311, 97, 1);
  const linalg::Matrix b = RandomMatrix(97, 53, 2);
  ExpectSameMatrixAtAllWidths([&] { return linalg::Gemm(a, b); });

  const linalg::Matrix at = RandomMatrix(311, 97, 3);
  const linalg::Matrix bt = RandomMatrix(311, 53, 4);
  ExpectSameMatrixAtAllWidths([&] { return linalg::GemmTransA(at, bt); });
  const linalg::Matrix c = RandomMatrix(53, 97, 5);
  ExpectSameMatrixAtAllWidths([&] { return linalg::GemmTransB(a, c); });
}

TEST_F(ParityTest, PairwiseDistancesAndReductionsAreBitIdentical) {
  const linalg::Matrix m = RandomMatrix(401, 37, 6);
  ExpectSameMatrixAtAllWidths(
      [&] { return linalg::PairwiseSquaredDistances(m); });

  parallel::SetNumThreads(1);
  const std::vector<double> col_ref = linalg::ColSums(m);
  const std::vector<double> row_ref = linalg::RowSums(m);
  for (int width : {2, 8}) {
    parallel::SetNumThreads(width);
    EXPECT_EQ(linalg::ColSums(m), col_ref);
    EXPECT_EQ(linalg::RowSums(m), row_ref);
  }
}

TEST_F(ParityTest, KMeansLabelsIdenticalAcrossWidths) {
  data::GaussianMixtureSpec spec;
  spec.name = "parity";
  spec.num_classes = 4;
  spec.num_instances = 600;  // > assignment shard width, so shards matter
  spec.num_features = 12;
  spec.separation = 4.0;
  const data::Dataset ds = data::GenerateGaussianMixture(spec, 11);

  clustering::KMeansConfig cfg;
  cfg.k = 4;
  parallel::SetNumThreads(1);
  const auto reference = clustering::KMeans(cfg).Cluster(ds.x, 5);
  for (int width : {2, 8}) {
    parallel::SetNumThreads(width);
    const auto got = clustering::KMeans(cfg).Cluster(ds.x, 5);
    EXPECT_EQ(got.assignment, reference.assignment)
        << "labels differ at " << width << " threads";
    EXPECT_EQ(got.objective, reference.objective);
    EXPECT_EQ(got.iterations, reference.iterations);
  }
}

TEST_F(ParityTest, FastKMeansModeIsThreadCountInvariant) {
  // deterministic=false trades the serial-reference restart stream for
  // ShardRng substreams; the result must still be identical at any
  // thread count (it depends only on seed and restart index).
  data::GaussianMixtureSpec spec;
  spec.name = "parity-fast";
  spec.num_classes = 3;
  spec.num_instances = 300;
  spec.num_features = 8;
  spec.separation = 4.0;
  const data::Dataset ds = data::GenerateGaussianMixture(spec, 13);

  clustering::KMeansConfig cfg;
  cfg.k = 3;
  parallel::SetDeterministic(false);
  parallel::SetNumThreads(1);
  const auto reference = clustering::KMeans(cfg).Cluster(ds.x, 5);
  for (int width : {2, 8}) {
    parallel::SetNumThreads(width);
    const auto got = clustering::KMeans(cfg).Cluster(ds.x, 5);
    EXPECT_EQ(got.assignment, reference.assignment);
    EXPECT_EQ(got.objective, reference.objective);
  }
  parallel::SetDeterministic(true);
}

template <typename Model>
void ExpectCd1ParityAcrossWidths(const linalg::Matrix& x,
                                 rbm::RbmConfig config) {
  config.num_visible = static_cast<int>(x.cols());
  parallel::SetNumThreads(1);
  Model reference(config);
  reference.Train(x);
  for (int width : {2, 8}) {
    parallel::SetNumThreads(width);
    Model got(config);
    got.Train(x);
    ASSERT_EQ(got.weights().size(), reference.weights().size());
    for (std::size_t i = 0; i < got.weights().size(); ++i) {
      ASSERT_EQ(got.weights().data()[i], reference.weights().data()[i])
          << "weight " << i << " differs at " << width << " threads";
    }
    EXPECT_EQ(got.visible_bias(), reference.visible_bias());
    EXPECT_EQ(got.hidden_bias(), reference.hidden_bias());
  }
}

data::Dataset ParityDataset(int classes, int n, int d, std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "parity-kernels";
  spec.num_classes = classes;
  spec.num_instances = n;
  spec.num_features = d;
  spec.separation = 4.0;
  return data::GenerateGaussianMixture(spec, seed);
}

TEST_F(ParityTest, SynthesisBitIdenticalAcrossWidths) {
  parallel::SetNumThreads(1);
  const data::Dataset reference = ParityDataset(3, 500, 16, 29);
  for (int width : {2, 4, 8}) {
    parallel::SetNumThreads(width);
    const data::Dataset got = ParityDataset(3, 500, 16, 29);
    EXPECT_EQ(got.labels, reference.labels);
    ASSERT_EQ(got.x.size(), reference.x.size());
    for (std::size_t i = 0; i < got.x.size(); ++i) {
      ASSERT_EQ(got.x.data()[i], reference.x.data()[i])
          << "element " << i << " differs at " << width << " threads";
    }
  }
}

TEST_F(ParityTest, GmmFitSoftBitIdenticalAcrossWidths) {
  const data::Dataset ds = ParityDataset(4, 600, 10, 31);
  const clustering::GaussianMixture gmm(
      {.num_components = 4, .max_iterations = 30});
  ExpectSameMatrixAtAllWidths(
      [&] { return gmm.FitSoft(ds.x, 7).responsibilities; });
  parallel::SetNumThreads(1);
  const auto reference = gmm.FitSoft(ds.x, 7);
  for (int width : {2, 4, 8}) {
    parallel::SetNumThreads(width);
    const auto got = gmm.FitSoft(ds.x, 7);
    EXPECT_EQ(got.hard.assignment, reference.hard.assignment);
    EXPECT_EQ(got.log_likelihood_trace, reference.log_likelihood_trace);
    EXPECT_EQ(got.weights, reference.weights);
  }
}

TEST_F(ParityTest, SpectralEmbeddingBitIdenticalAcrossWidths) {
  // 300 rows: the affinity/Laplacian shards split (grain 32) and the
  // Jacobi rotations cross their serial-inline threshold (grain 256).
  const data::Dataset ds = ParityDataset(3, 300, 8, 37);
  clustering::Spectral::Options options;
  options.num_clusters = 3;
  options.knn = 12;
  const clustering::Spectral spectral(options);
  ExpectSameMatrixAtAllWidths([&] { return spectral.Embed(ds.x); });
}

TEST_F(ParityTest, AgglomerativeLabelsIdenticalAcrossWidths) {
  const data::Dataset ds = ParityDataset(4, 300, 6, 41);
  for (const auto linkage :
       {clustering::Linkage::kWard, clustering::Linkage::kComplete}) {
    const clustering::Agglomerative agg(4, linkage);
    parallel::SetNumThreads(1);
    const auto reference = agg.Cluster(ds.x, 0);
    for (int width : {2, 4, 8}) {
      parallel::SetNumThreads(width);
      const auto got = agg.Cluster(ds.x, 0);
      EXPECT_EQ(got.assignment, reference.assignment)
          << LinkageName(linkage) << " labels differ at " << width
          << " threads";
    }
  }
}

TEST_F(ParityTest, PcaFitAndTransformBitIdenticalAcrossWidths) {
  const linalg::Matrix x = RandomMatrix(400, 24, 43);
  const linalg::Matrix probe = RandomMatrix(50, 24, 44);
  linalg::Pca::Options options;
  options.num_components = 8;
  options.whiten = true;
  ExpectSameMatrixAtAllWidths([&] {
    const linalg::Pca pca = linalg::Pca::Fit(x, options);
    return pca.Transform(probe);
  });
}

TEST_F(ParityTest, SlsGradientBitIdenticalAcrossWidths) {
  const std::size_t m = 120, nv = 20, nh = 24;
  const linalg::Matrix v = RandomMatrix(m, nv, 47);
  linalg::Matrix h = RandomMatrix(m, nh, 48);
  linalg::SigmoidInPlace(&h);
  const linalg::Matrix w = RandomMatrix(nv, nh, 49);
  const std::vector<double> b(nh, 0.1);

  core::SupervisionBatch batch;
  batch.members = {{0, 3, 7, 11, 19}, {2, 5, 8}, {30, 31, 40, 41}};
  for (const auto& rows : batch.members) {
    batch.num_credible += rows.size();
    batch.num_ordered_pairs += rows.size() * (rows.size() - 1);
  }
  const core::SlsGradientOptions options;

  for (const bool fast : {false, true}) {
    ExpectSameMatrixAtAllWidths([&] {
      linalg::Matrix dw(nv, nh);
      std::vector<double> db(nh, 0.0);
      if (fast) {
        core::AccumulateSlsGradientFast(v, h, batch, w, b, options,
                                        {&dw, &db});
      } else {
        core::AccumulateSlsGradientNaive(v, h, batch, w, b, options,
                                         {&dw, &db});
      }
      return dw;
    });
  }
}

TEST_F(ParityTest, FantasySamplingDeterministicDefaultParity) {
  // Pins the deterministic mode (the shipped default): the single-stream
  // Gibbs chain is bit-identical at any thread count.
  parallel::SetDeterministic(true);
  linalg::Matrix x = RandomMatrix(96, 24, 51);
  linalg::SigmoidInPlace(&x);
  rbm::RbmConfig config;
  config.num_visible = 24;
  config.num_hidden = 16;
  config.epochs = 2;
  config.seed = 3;
  parallel::SetNumThreads(1);
  rbm::Rbm model(config);
  model.Train(x);
  rbm::GibbsOptions gibbs;
  gibbs.burn_in = 5;
  gibbs.seed = 13;
  ExpectSameMatrixAtAllWidths(
      [&] { return rbm::SampleFantasies(model, x, gibbs); });
}

TEST_F(ParityTest, FastGibbsSamplerSeedReproducible) {
  // deterministic=false trades the serial RNG stream for per-shard
  // substreams: the fantasies must still be a pure function of the seed,
  // identical at any thread count, and distinct for a different seed.
  linalg::Matrix x = RandomMatrix(96, 24, 53);
  linalg::SigmoidInPlace(&x);
  rbm::RbmConfig config;
  config.num_visible = 24;
  config.num_hidden = 16;
  config.epochs = 2;
  config.seed = 5;
  parallel::SetNumThreads(1);
  rbm::Rbm model(config);
  model.Train(x);
  rbm::GibbsOptions gibbs;
  gibbs.burn_in = 5;
  gibbs.seed = 17;

  parallel::SetDeterministic(false);
  parallel::SetNumThreads(1);
  const linalg::Matrix reference = rbm::SampleFantasies(model, x, gibbs);
  for (int width : {1, 2, 4, 8}) {
    parallel::SetNumThreads(width);
    const linalg::Matrix got = rbm::SampleFantasies(model, x, gibbs);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got.data()[i], reference.data()[i])
          << "fantasy element " << i << " differs at " << width
          << " threads";
    }
  }
  rbm::GibbsOptions other = gibbs;
  other.seed = 18;
  const linalg::Matrix different = rbm::SampleFantasies(model, x, other);
  bool any_differs = false;
  for (std::size_t i = 0; i < different.size() && !any_differs; ++i) {
    any_differs = different.data()[i] != reference.data()[i];
  }
  EXPECT_TRUE(any_differs) << "seed change did not perturb the fast chain";
  parallel::SetDeterministic(true);

  // The deterministic default is a *different* stream than the fast path
  // (single serial chain), so flipping the mode back changes the draw.
  const linalg::Matrix serial = rbm::SampleFantasies(model, x, gibbs);
  bool mode_differs = false;
  for (std::size_t i = 0; i < serial.size() && !mode_differs; ++i) {
    mode_differs = serial.data()[i] != reference.data()[i];
  }
  EXPECT_TRUE(mode_differs);
}

TEST_F(ParityTest, FastCd1TrainingSeedReproducible) {
  // Sharded hidden-state sampling in the training loop: fixed seed ->
  // fixed weights at any thread count.
  linalg::Matrix x = RandomMatrix(200, 32, 57);
  linalg::SigmoidInPlace(&x);
  rbm::RbmConfig config;
  config.num_visible = 32;
  config.num_hidden = 24;
  config.epochs = 3;
  config.batch_size = 64;
  config.seed = 11;

  parallel::SetDeterministic(false);
  parallel::SetNumThreads(1);
  rbm::Rbm reference(config);
  reference.Train(x);
  for (int width : {1, 2, 4, 8}) {
    parallel::SetNumThreads(width);
    rbm::Rbm got(config);
    got.Train(x);
    ASSERT_EQ(got.weights().size(), reference.weights().size());
    for (std::size_t i = 0; i < got.weights().size(); ++i) {
      ASSERT_EQ(got.weights().data()[i], reference.weights().data()[i])
          << "fast-mode weight " << i << " differs at " << width
          << " threads";
    }
    EXPECT_EQ(got.hidden_bias(), reference.hidden_bias());
  }
  parallel::SetDeterministic(true);
}

TEST_F(ParityTest, Cd1WeightUpdatesIdenticalAcrossWidths) {
  // Large enough that the GEMMs, reductions and the weight update all
  // split into several shards.
  linalg::Matrix x = RandomMatrix(320, 48, 21);
  linalg::Matrix binary = x;
  linalg::SigmoidInPlace(&binary);  // map into [0,1] for the binary RBM

  rbm::RbmConfig config;
  config.num_hidden = 40;
  config.epochs = 3;
  config.batch_size = 64;
  config.seed = 9;
  ExpectCd1ParityAcrossWidths<rbm::Rbm>(binary, config);
  ExpectCd1ParityAcrossWidths<rbm::Grbm>(x, config);
}

}  // namespace
}  // namespace mcirbm
