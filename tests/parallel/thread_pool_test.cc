#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mcirbm::parallel {
namespace {

// Restores the default global pool after each test so tests don't leak
// width settings into each other.
class ThreadPoolTest : public ::testing::Test {
 protected:
  ~ThreadPoolTest() override { SetNumThreads(0); }
};

TEST_F(ThreadPoolTest, PoolLifecycleRunsEveryTaskOnce) {
  for (int width : {1, 2, 4}) {
    ThreadPool pool(width);
    EXPECT_GE(pool.num_threads(), 1);
    std::vector<std::atomic<int>> hits(100);
    pool.Run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST_F(ThreadPoolTest, ConcurrentRunFromExternalThreads) {
  // A persistent service (serve::MicroBatcher's flusher plus its client
  // threads) shares the pool with the rest of the process: Run entered
  // from several external threads at once must keep every region's tasks
  // isolated and complete.
  ThreadPool pool(3);
  constexpr int kSubmitters = 4;
  constexpr int kRounds = 10;
  constexpr std::size_t kTasks = 64;
  std::vector<std::thread> submitters;
  std::vector<int> failures(kSubmitters, 0);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::atomic<int>> hits(kTasks);
        pool.Run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (const auto& h : hits) {
          if (h.load() != 1) ++failures[s];
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  for (int s = 0; s < kSubmitters; ++s) EXPECT_EQ(failures[s], 0);
}

TEST_F(ThreadPoolTest, DestructorJoinsIdleWorkers) {
  // Construct and immediately destroy; must not hang or leak threads.
  for (int round = 0; round < 5; ++round) {
    ThreadPool pool(4);
  }
}

TEST_F(ThreadPoolTest, SetNumThreadsRebuildsGlobalPool) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
}

TEST_F(ThreadPoolTest, EnvVarSetsDefaultWidth) {
  ::setenv("MCIRBM_THREADS", "2", /*overwrite=*/1);
  SetNumThreads(0);
  EXPECT_EQ(NumThreads(), 2);
  ::unsetenv("MCIRBM_THREADS");
  SetNumThreads(0);
  EXPECT_GE(NumThreads(), 1);
}

TEST_F(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  SetNumThreads(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(hits.size(), 7, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ThreadPoolTest, ParallelForPropagatesExceptions) {
  SetNumThreads(4);
  EXPECT_THROW(
      ParallelFor(100, 1,
                  [](std::size_t begin, std::size_t) {
                    if (begin == 42) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> count{0};
  ParallelFor(10, 1,
              [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST_F(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  SetNumThreads(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  ParallelFor(64, 1, [&](std::size_t b0, std::size_t e0) {
    for (std::size_t i = b0; i < e0; ++i) {
      EXPECT_TRUE(InParallelRegion());
      ParallelFor(64, 8, [&](std::size_t b1, std::size_t e1) {
        for (std::size_t j = b1; j < e1; ++j) hits[i * 64 + j].fetch_add(1);
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(InParallelRegion());
}

TEST_F(ThreadPoolTest, SerialFallbackStillMarksParallelRegion) {
  // A width-1 pool must answer InParallelRegion() the same way a worker
  // would, or kernels branching on it become thread-count dependent.
  ThreadPool pool(1);
  bool seen_in_region = false;
  pool.Run(4, [&](std::size_t) { seen_in_region = InParallelRegion(); });
  EXPECT_TRUE(seen_in_region);
  EXPECT_FALSE(InParallelRegion());
  // ...including when a task throws.
  EXPECT_THROW(pool.Run(4,
                        [](std::size_t i) {
                          if (i == 2) throw std::runtime_error("boom");
                        }),
               std::runtime_error);
  EXPECT_FALSE(InParallelRegion());
  // A single task is not a region at any width.
  pool.Run(1, [&](std::size_t) { seen_in_region = InParallelRegion(); });
  EXPECT_FALSE(seen_in_region);
}

TEST_F(ThreadPoolTest, ShardedReduceIsThreadCountInvariant) {
  // A sum whose result depends on the reduction tree: catching a
  // thread-count-dependent schedule would show up as a bit difference.
  std::vector<double> values(10001);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  const auto sum = [&] {
    return ShardedSum(values.size(), 128,
                      [&](std::size_t begin, std::size_t end) {
                        double s = 0;
                        for (std::size_t i = begin; i < end; ++i) {
                          s += values[i];
                        }
                        return s;
                      });
  };
  SetNumThreads(1);
  const double serial = sum();
  for (int width : {2, 8}) {
    SetNumThreads(width);
    EXPECT_EQ(serial, sum()) << "width " << width;
  }
}

TEST_F(ThreadPoolTest, ShardedReduceCombinesInShardOrder) {
  SetNumThreads(8);
  const auto concat = ShardedReduce(
      10, 2, std::vector<std::size_t>{},
      [](std::size_t begin, std::size_t) {
        return std::vector<std::size_t>{begin};
      },
      [](std::vector<std::size_t> acc, std::vector<std::size_t> part) {
        acc.insert(acc.end(), part.begin(), part.end());
        return acc;
      });
  EXPECT_EQ(concat, (std::vector<std::size_t>{0, 2, 4, 6, 8}));
}

TEST_F(ThreadPoolTest, ShardRngIsDeterministicAndDecorrelated) {
  rng::Rng a = ShardRng(7, 0);
  rng::Rng b = ShardRng(7, 0);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  rng::Rng c = ShardRng(7, 1);
  rng::Rng d = ShardRng(8, 0);
  const std::uint64_t base = ShardRng(7, 0).NextUint64();
  EXPECT_NE(base, c.NextUint64());
  EXPECT_NE(base, d.NextUint64());
}

TEST_F(ThreadPoolTest, DeterministicFlagRoundTrips) {
  // The startup default tracks MCIRBM_DETERMINISTIC (true when unset).
  EXPECT_EQ(Deterministic(), DefaultDeterministic());
  SetDeterministic(false);
  EXPECT_FALSE(Deterministic());
  SetDeterministic(true);
  EXPECT_TRUE(Deterministic());
  SetDeterministic(DefaultDeterministic());
}

}  // namespace
}  // namespace mcirbm::parallel
