#include "rbm/rbm.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "data/transforms.h"
#include "rng/rng.h"

namespace mcirbm::rbm {
namespace {

// Binary-ish data with structure: two prototype bit patterns plus noise.
linalg::Matrix PatternData(int n, int d, std::uint64_t seed) {
  rng::Rng rng(seed);
  linalg::Matrix x(n, d);
  for (int i = 0; i < n; ++i) {
    const bool proto = i % 2 == 0;
    for (int j = 0; j < d; ++j) {
      const bool on = proto ? j < d / 2 : j >= d / 2;
      const double p = on ? 0.9 : 0.1;
      x(i, j) = rng.Bernoulli(p) ? 1.0 : 0.0;
    }
  }
  return x;
}

RbmConfig SmallConfig(int nv) {
  RbmConfig cfg;
  cfg.num_visible = nv;
  cfg.num_hidden = 8;
  cfg.learning_rate = 0.05;
  cfg.epochs = 30;
  cfg.seed = 3;
  return cfg;
}

TEST(RbmTest, HiddenFeatureShapeAndRange) {
  Rbm model(SmallConfig(12));
  const linalg::Matrix x = PatternData(20, 12, 1);
  const linalg::Matrix h = model.HiddenFeatures(x);
  EXPECT_EQ(h.rows(), 20u);
  EXPECT_EQ(h.cols(), 8u);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_GT(h.data()[i], 0.0);
    EXPECT_LT(h.data()[i], 1.0);
  }
}

TEST(RbmTest, ReconstructionIsProbabilities) {
  Rbm model(SmallConfig(10));
  const linalg::Matrix x = PatternData(15, 10, 2);
  const linalg::Matrix r = model.Reconstruct(x);
  EXPECT_EQ(r.rows(), x.rows());
  EXPECT_EQ(r.cols(), x.cols());
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_GT(r.data()[i], 0.0);
    EXPECT_LT(r.data()[i], 1.0);
  }
}

TEST(RbmTest, TrainingReducesReconstructionError) {
  RbmConfig cfg = SmallConfig(16);
  cfg.epochs = 60;
  Rbm model(cfg);
  const linalg::Matrix x = PatternData(60, 16, 3);
  const double before = model.ReconstructionError(x);
  const auto history = model.Train(x);
  const double after = model.ReconstructionError(x);
  EXPECT_LT(after, before);
  ASSERT_EQ(history.size(), 60u);
  // Late-epoch error beats early-epoch error on average.
  double early = 0, late = 0;
  for (int e = 0; e < 10; ++e) early += history[e].reconstruction_error;
  for (int e = 50; e < 60; ++e) late += history[e].reconstruction_error;
  EXPECT_LT(late, early);
}

TEST(RbmTest, DeterministicTraining) {
  const linalg::Matrix x = PatternData(30, 10, 4);
  Rbm a(SmallConfig(10)), b(SmallConfig(10));
  a.Train(x);
  b.Train(x);
  EXPECT_TRUE(a.weights().AllClose(b.weights(), 0));
  EXPECT_EQ(a.hidden_bias(), b.hidden_bias());
}

TEST(RbmTest, SeedChangesInitialization) {
  RbmConfig c1 = SmallConfig(10);
  RbmConfig c2 = SmallConfig(10);
  c2.seed = 99;
  Rbm a(c1), b(c2);
  EXPECT_FALSE(a.weights().AllClose(b.weights(), 1e-9));
}

TEST(RbmTest, MinibatchTrainingRuns) {
  RbmConfig cfg = SmallConfig(10);
  cfg.batch_size = 7;  // does not divide 30 evenly on purpose
  Rbm model(cfg);
  const linalg::Matrix x = PatternData(30, 10, 5);
  const auto history = model.Train(x);
  EXPECT_EQ(history.size(), static_cast<std::size_t>(cfg.epochs));
}

TEST(RbmTest, CdKGreaterThanOneRuns) {
  RbmConfig cfg = SmallConfig(10);
  cfg.cd_k = 3;
  cfg.epochs = 10;
  Rbm model(cfg);
  const linalg::Matrix x = PatternData(20, 10, 6);
  model.Train(x);
  EXPECT_LT(model.ReconstructionError(x), 1.0);
}

TEST(RbmTest, MeanFieldModeRuns) {
  RbmConfig cfg = SmallConfig(10);
  cfg.sample_hidden_states = false;
  Rbm model(cfg);
  const linalg::Matrix x = PatternData(20, 10, 7);
  const auto history = model.Train(x);
  EXPECT_FALSE(history.empty());
}

TEST(RbmTest, ZeroEpochsLeavesParametersAtInit) {
  RbmConfig cfg = SmallConfig(10);
  cfg.epochs = 0;
  Rbm model(cfg);
  const linalg::Matrix w0 = model.weights();
  const linalg::Matrix x = PatternData(10, 10, 8);
  model.Train(x);
  EXPECT_TRUE(model.weights().AllClose(w0, 0));
}

TEST(RbmDeathTest, WrongDataWidthAborts) {
  Rbm model(SmallConfig(10));
  const linalg::Matrix x(5, 9);
  EXPECT_DEATH(model.Train(x), "num_visible");
}

TEST(RbmDeathTest, InvalidConfigAborts) {
  RbmConfig cfg;
  cfg.num_visible = 0;
  cfg.num_hidden = 4;
  EXPECT_DEATH(Rbm{cfg}, "CHECK failed");
}

}  // namespace
}  // namespace mcirbm::rbm
