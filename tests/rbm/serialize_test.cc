#include "rbm/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "rbm/grbm.h"
#include "rbm/rbm.h"

namespace mcirbm::rbm {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/rbm_serialize_test.txt";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  static RbmConfig Config() {
    RbmConfig cfg;
    cfg.num_visible = 5;
    cfg.num_hidden = 3;
    cfg.seed = 11;
    return cfg;
  }

  std::string path_;
};

TEST_F(SerializeTest, RoundTripPreservesParameters) {
  Rbm original(Config());
  // Perturb parameters so they differ from a fresh init.
  (*original.mutable_weights())(2, 1) = 0.123456789012345;
  (*original.mutable_visible_bias())[4] = -2.5;
  (*original.mutable_hidden_bias())[0] = 1e-7;

  ASSERT_TRUE(SaveParameters(original, path_).ok());

  RbmConfig cfg = Config();
  cfg.seed = 999;  // different init, will be overwritten by load
  Rbm restored(cfg);
  ASSERT_TRUE(LoadParameters(path_, &restored).ok());
  EXPECT_TRUE(restored.weights().AllClose(original.weights(), 0));
  EXPECT_EQ(restored.visible_bias(), original.visible_bias());
  EXPECT_EQ(restored.hidden_bias(), original.hidden_bias());
}

TEST_F(SerializeTest, GrbmParametersLoadIntoRbmShapeMatch) {
  // The format stores the model name informationally; shapes must match.
  Grbm g(Config());
  ASSERT_TRUE(SaveParameters(g, path_).ok());
  Rbm r(Config());
  EXPECT_TRUE(LoadParameters(path_, &r).ok());
  EXPECT_TRUE(r.weights().AllClose(g.weights(), 0));
}

TEST_F(SerializeTest, ShapeMismatchRejected) {
  Rbm original(Config());
  ASSERT_TRUE(SaveParameters(original, path_).ok());
  RbmConfig other = Config();
  other.num_hidden = 4;
  Rbm wrong(other);
  const Status s = LoadParameters(path_, &wrong);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializeTest, BadMagicRejected) {
  std::ofstream out(path_);
  out << "not-an-rbm-file\n";
  out.close();
  Rbm model(Config());
  const Status s = LoadParameters(path_, &model);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST_F(SerializeTest, TruncatedFileRejected) {
  Rbm original(Config());
  ASSERT_TRUE(SaveParameters(original, path_).ok());
  // Truncate the file in the middle of the W block.
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_);
  out << content.substr(0, content.size() * 2 / 3);
  out.close();
  Rbm model(Config());
  EXPECT_FALSE(LoadParameters(path_, &model).ok());
}

TEST_F(SerializeTest, MissingFileIsIoError) {
  Rbm model(Config());
  const Status s = LoadParameters("/no/such/params.txt", &model);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace mcirbm::rbm
