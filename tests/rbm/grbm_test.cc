#include "rbm/grbm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "data/transforms.h"

namespace mcirbm::rbm {
namespace {

linalg::Matrix RealData(int n, int d, std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "g";
  spec.num_classes = 2;
  spec.num_instances = n;
  spec.num_features = d;
  spec.separation = 4.0;
  linalg::Matrix x = data::GenerateGaussianMixture(spec, seed).x;
  data::StandardizeInPlace(&x);
  return x;
}

RbmConfig SmallConfig(int nv) {
  RbmConfig cfg;
  cfg.num_visible = nv;
  cfg.num_hidden = 6;
  cfg.learning_rate = 0.01;
  cfg.epochs = 40;
  cfg.seed = 5;
  return cfg;
}

TEST(GrbmTest, ReconstructionIsUnboundedRealValued) {
  Grbm model(SmallConfig(8));
  const linalg::Matrix x = RealData(25, 8, 1);
  const linalg::Matrix r = model.Reconstruct(x);
  EXPECT_EQ(r.rows(), x.rows());
  EXPECT_EQ(r.cols(), x.cols());
  // Linear reconstruction is not squashed into (0,1): with zero-init biases
  // and tiny weights it concentrates near Σh·w ≈ 0, but remains real-valued.
  // Just verify it is finite everywhere.
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_TRUE(std::isfinite(r.data()[i]));
  }
}

TEST(GrbmTest, TrainingReducesReconstructionError) {
  Grbm model(SmallConfig(8));
  const linalg::Matrix x = RealData(60, 8, 2);
  const double before = model.ReconstructionError(x);
  model.Train(x);
  const double after = model.ReconstructionError(x);
  EXPECT_LT(after, before);
}

TEST(GrbmTest, DeterministicTraining) {
  const linalg::Matrix x = RealData(30, 6, 3);
  Grbm a(SmallConfig(6)), b(SmallConfig(6));
  a.Train(x);
  b.Train(x);
  EXPECT_TRUE(a.weights().AllClose(b.weights(), 0));
}

TEST(GrbmTest, HiddenFeaturesAreSigmoidRange) {
  Grbm model(SmallConfig(6));
  const linalg::Matrix x = RealData(20, 6, 4);
  const linalg::Matrix h = model.HiddenFeatures(x);
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_GT(h.data()[i], 0.0);
    EXPECT_LT(h.data()[i], 1.0);
  }
}

TEST(GrbmTest, NameDistinguishesModels) {
  Grbm g(SmallConfig(4));
  EXPECT_EQ(g.name(), "grbm");
}

TEST(GrbmTest, TrainingIsStableOnStandardizedData) {
  RbmConfig cfg = SmallConfig(10);
  cfg.epochs = 80;
  Grbm model(cfg);
  const linalg::Matrix x = RealData(80, 10, 5);
  model.Train(x);
  EXPECT_TRUE(std::isfinite(model.weights().FrobeniusNorm()));
  EXPECT_LT(model.weights().MaxAbs(), 100.0);  // no blow-up
}

}  // namespace
}  // namespace mcirbm::rbm
