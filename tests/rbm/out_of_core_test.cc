// Out-of-core training parity: Model::TrainFromSource streaming
// minibatches from an mmap-backed binary artifact must be bit-identical
// to Model::Train on the materialized matrix — at every thread count, in
// both determinism modes. This is the contract that makes the binary
// format and chunked ingestion safe to use for the paper benches.
#include "api/model.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "data/binary_io.h"
#include "data/io.h"
#include "data/source.h"
#include "data/synthetic.h"
#include "parallel/thread_pool.h"

namespace mcirbm {
namespace {

data::Dataset MakeDataset() {
  data::GaussianMixtureSpec spec;
  spec.name = "ooc";
  spec.num_classes = 3;
  spec.num_instances = 60;
  spec.num_features = 6;
  return data::GenerateGaussianMixture(spec, 21);
}

core::PipelineConfig MakeConfig(core::ModelKind kind, int threads,
                                bool deterministic) {
  core::PipelineConfig config;
  config.model = kind;
  config.rbm.num_hidden = 8;
  config.rbm.epochs = 4;
  config.rbm.batch_size = 16;
  config.rbm.learning_rate = kind == core::ModelKind::kGrbm ? 1e-3 : 0.05;
  config.rbm.seed = 3;
  // Train applies config.parallel via ApplyParallelConfig, so the
  // execution-engine settings must travel through the config, not through
  // direct parallel::SetNumThreads calls.
  config.parallel.num_threads = threads;
  config.parallel.deterministic = deterministic;
  return config;
}

void ExpectBitIdentical(const api::Model& a, const api::Model& b,
                        const linalg::Matrix& x) {
  const rbm::RbmBase& ea = a.encoder();
  const rbm::RbmBase& eb = b.encoder();
  ASSERT_EQ(ea.weights().rows(), eb.weights().rows());
  ASSERT_EQ(ea.weights().cols(), eb.weights().cols());
  for (std::size_t i = 0; i < ea.weights().size(); ++i) {
    ASSERT_EQ(ea.weights().data()[i], eb.weights().data()[i])
        << "weight " << i;
  }
  ASSERT_EQ(ea.visible_bias(), eb.visible_bias());
  ASSERT_EQ(ea.hidden_bias(), eb.hidden_bias());

  auto fa = a.Transform(x);
  auto fb = b.Transform(x);
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  for (std::size_t i = 0; i < fa.value().size(); ++i) {
    ASSERT_EQ(fa.value().data()[i], fb.value().data()[i]);
  }
}

class OutOfCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/out_of_core_test.bin";
    dataset_ = MakeDataset();
    ASSERT_TRUE(data::SaveDatasetBinary(dataset_, path_).ok());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    // Restore the global execution engine for later tests.
    parallel::SetNumThreads(0);
    parallel::SetDeterministic(parallel::DefaultDeterministic());
  }
  std::string path_;
  data::Dataset dataset_;
};

TEST_F(OutOfCoreTest, GrbmParityAcrossThreadsAndDeterminismModes) {
  for (const bool deterministic : {true, false}) {
    for (const int threads : {1, 2, 4}) {
      const auto config =
          MakeConfig(core::ModelKind::kGrbm, threads, deterministic);
      auto in_memory = api::Model::Train(dataset_.x, config, 7);
      ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();

      data::DataSourceConfig source_config;
      source_config.max_resident_rows = 16;
      auto source = data::OpenMmapSource(path_, "ooc", source_config);
      ASSERT_TRUE(source.ok()) << source.status().ToString();
      auto streamed =
          api::Model::TrainFromSource(*source.value(), config, 7);
      ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();

      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " deterministic=" + std::to_string(deterministic));
      ExpectBitIdentical(in_memory.value(), streamed.value(), dataset_.x);
    }
  }
}

TEST_F(OutOfCoreTest, BinaryRbmParity) {
  const auto config = MakeConfig(core::ModelKind::kRbm, 2, true);
  auto in_memory = api::Model::Train(dataset_.x, config, 7);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
  data::DataSourceConfig source_config;
  source_config.max_resident_rows = 10;
  auto source = data::OpenMmapSource(path_, "ooc", source_config);
  ASSERT_TRUE(source.ok());
  auto streamed = api::Model::TrainFromSource(*source.value(), config, 7);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ExpectBitIdentical(in_memory.value(), streamed.value(), dataset_.x);
}

TEST_F(OutOfCoreTest, InMemorySourceParity) {
  const auto config = MakeConfig(core::ModelKind::kGrbm, 1, true);
  auto in_memory = api::Model::Train(dataset_.x, config, 7);
  ASSERT_TRUE(in_memory.ok());
  auto source = data::MakeInMemorySource(dataset_, {});
  ASSERT_TRUE(source.ok());
  auto streamed = api::Model::TrainFromSource(*source.value(), config, 7);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ExpectBitIdentical(in_memory.value(), streamed.value(), dataset_.x);
}

TEST_F(OutOfCoreTest, SlsModelRejectsNonDenseSource) {
  const auto config = MakeConfig(core::ModelKind::kSlsGrbm, 1, true);
  auto source = data::OpenMmapSource(path_, "ooc", {});
  ASSERT_TRUE(source.ok());
  auto streamed = api::Model::TrainFromSource(*source.value(), config, 7);
  ASSERT_FALSE(streamed.ok());
  EXPECT_EQ(streamed.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(OutOfCoreTest, SequentialSourceRejected) {
  const std::string csv = ::testing::TempDir() + "/out_of_core_test.csv";
  ASSERT_TRUE(data::SaveDatasetCsv(dataset_, csv).ok());
  auto source = data::OpenCsvSource(csv, "ooc", {});
  ASSERT_TRUE(source.ok());
  const auto config = MakeConfig(core::ModelKind::kGrbm, 1, true);
  auto streamed = api::Model::TrainFromSource(*source.value(), config, 7);
  ASSERT_FALSE(streamed.ok());
  EXPECT_EQ(streamed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(streamed.status().message().find("dataset convert"),
            std::string::npos);
  std::remove(csv.c_str());
}

}  // namespace
}  // namespace mcirbm
