#include "rbm/sampling.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "linalg/ops.h"
#include "rbm/grbm.h"
#include "rbm/rbm.h"
#include "rng/rng.h"

namespace mcirbm::rbm {
namespace {

// Two template patterns: left-half-on or right-half-on (with flip noise).
linalg::Matrix BinaryPatterns(std::size_t n, std::size_t nv, rng::Rng* rng) {
  linalg::Matrix x(n, nv);
  for (std::size_t i = 0; i < n; ++i) {
    const bool left = i % 2 == 0;
    for (std::size_t j = 0; j < nv; ++j) {
      const double p = (left == (j < nv / 2)) ? 0.95 : 0.05;
      x(i, j) = rng->Bernoulli(p) ? 1.0 : 0.0;
    }
  }
  return x;
}

std::unique_ptr<Rbm> TrainedModel(const linalg::Matrix& x) {
  RbmConfig config;
  config.num_visible = static_cast<int>(x.cols());
  config.num_hidden = 12;
  config.learning_rate = 0.1;
  config.epochs = 150;
  config.batch_size = 10;
  config.momentum = 0.0;
  config.weight_decay = 0.0;
  config.seed = 3;
  auto model = std::make_unique<Rbm>(config);
  model->Train(x);
  return model;
}

// Distance from a visible configuration to the nearest template.
double DistanceToNearestMode(std::span<const double> v) {
  const std::size_t nv = v.size();
  double to_left = 0, to_right = 0;
  for (std::size_t j = 0; j < nv; ++j) {
    const double left_bit = j < nv / 2 ? 1.0 : 0.0;
    to_left += std::abs(v[j] - left_bit);
    to_right += std::abs(v[j] - (1.0 - left_bit));
  }
  return std::min(to_left, to_right) / static_cast<double>(nv);
}

TEST(SamplingTest, FantasiesLandNearDataModes) {
  rng::Rng rng(5);
  const linalg::Matrix x = BinaryPatterns(80, 16, &rng);
  const auto model = TrainedModel(x);

  const linalg::Matrix fantasies =
      SampleFantasiesFromNoise(*model, 20, {.burn_in = 200, .seed = 9});
  double mean_distance = 0;
  for (std::size_t i = 0; i < fantasies.rows(); ++i) {
    mean_distance += DistanceToNearestMode(fantasies.Row(i));
  }
  mean_distance /= static_cast<double>(fantasies.rows());
  // Noise sits at ~0.5 from either template; trained fantasies must be
  // far closer.
  EXPECT_LT(mean_distance, 0.25);
}

TEST(SamplingTest, UntrainedModelFantasiesStayNoisy) {
  RbmConfig config;
  config.num_visible = 16;
  config.num_hidden = 12;
  const Rbm model(config);
  const linalg::Matrix fantasies =
      SampleFantasiesFromNoise(model, 20, {.burn_in = 50, .seed = 9});
  double mean_distance = 0;
  for (std::size_t i = 0; i < fantasies.rows(); ++i) {
    mean_distance += DistanceToNearestMode(fantasies.Row(i));
  }
  mean_distance /= static_cast<double>(fantasies.rows());
  EXPECT_GT(mean_distance, 0.35);
}

TEST(SamplingTest, DeterministicGivenSeed) {
  rng::Rng rng(7);
  const linalg::Matrix x = BinaryPatterns(40, 12, &rng);
  const auto model = TrainedModel(x);
  const GibbsOptions options{.burn_in = 30, .seed = 11};
  const linalg::Matrix a = SampleFantasiesFromNoise(*model, 5, options);
  const linalg::Matrix b = SampleFantasiesFromNoise(*model, 5, options);
  EXPECT_TRUE(a.AllClose(b, 0.0));
}

TEST(SamplingTest, MeanFieldChainIsDeterministicFromStart) {
  rng::Rng rng(9);
  const linalg::Matrix x = BinaryPatterns(40, 12, &rng);
  const auto model = TrainedModel(x);
  const linalg::Matrix start = x.SelectRows(std::vector<std::size_t>{0, 1});
  GibbsOptions options;
  options.burn_in = 20;
  options.sample_hidden = false;
  options.seed = 1;
  const linalg::Matrix a = SampleFantasies(*model, start, options);
  options.seed = 999;  // seed is irrelevant without hidden sampling
  const linalg::Matrix b = SampleFantasies(*model, start, options);
  EXPECT_TRUE(a.AllClose(b, 0.0));
}

TEST(SamplingTest, OutputShapeMatchesChainsAndVisible) {
  rng::Rng rng(11);
  const linalg::Matrix x = BinaryPatterns(20, 10, &rng);
  const auto model = TrainedModel(x);
  const linalg::Matrix fantasies =
      SampleFantasiesFromNoise(*model, 7, {.burn_in = 5, .seed = 1});
  EXPECT_EQ(fantasies.rows(), 7u);
  EXPECT_EQ(fantasies.cols(), 10u);
  // Binary model outputs are probabilities in [0,1].
  for (std::size_t i = 0; i < fantasies.size(); ++i) {
    EXPECT_GE(fantasies.data()[i], 0.0);
    EXPECT_LE(fantasies.data()[i], 1.0);
  }
}

TEST(SamplingTest, MomentumScheduleTrainsAtLeastAsWell) {
  rng::Rng rng(13);
  const linalg::Matrix x = BinaryPatterns(60, 16, &rng);
  RbmConfig config;
  config.num_visible = 16;
  config.num_hidden = 12;
  config.learning_rate = 0.05;
  config.epochs = 60;
  config.batch_size = 10;
  config.weight_decay = 0.0;
  config.seed = 3;

  RbmConfig scheduled = config;
  scheduled.momentum = 0.5;
  scheduled.momentum_final = 0.9;
  scheduled.momentum_switch_epoch = 10;

  Rbm plain(config), sched(scheduled);
  const auto plain_history = plain.Train(x);
  const auto sched_history = sched.Train(x);
  // The schedule is a training accelerant; it must at minimum stay stable
  // and converge (and usually ends lower).
  EXPECT_LT(sched_history.back().reconstruction_error,
            sched_history.front().reconstruction_error);
  EXPECT_LT(sched_history.back().reconstruction_error,
            plain_history.back().reconstruction_error * 1.5);
}

TEST(GibbsStepTest, MeanFieldStepEqualsReconstruct) {
  rng::Rng rng(15);
  const linalg::Matrix x = BinaryPatterns(10, 8, &rng);
  RbmConfig config;
  config.num_visible = 8;
  config.num_hidden = 4;
  const Rbm model(config);
  const linalg::Matrix via_step =
      model.GibbsStep(x, /*sample_hidden=*/false, nullptr);
  const linalg::Matrix via_reconstruct = model.Reconstruct(x);
  EXPECT_TRUE(via_step.AllClose(via_reconstruct, 0.0));
}

TEST(GibbsStepTest, SampledStepDiffersFromMeanField) {
  rng::Rng rng(17);
  const linalg::Matrix x = BinaryPatterns(10, 8, &rng);
  RbmConfig config;
  config.num_visible = 8;
  config.num_hidden = 4;
  config.init_weight_stddev = 1.0;  // strong weights: sampling matters
  const Rbm model(config);
  rng::Rng gibbs_rng(19);
  const linalg::Matrix sampled =
      model.GibbsStep(x, /*sample_hidden=*/true, &gibbs_rng);
  const linalg::Matrix mean_field =
      model.GibbsStep(x, /*sample_hidden=*/false, nullptr);
  EXPECT_FALSE(sampled.AllClose(mean_field, 1e-9));
}

TEST(GibbsStepDeathTest, SampledStepWithoutRngChecks) {
  RbmConfig config;
  config.num_visible = 4;
  config.num_hidden = 2;
  const Rbm model(config);
  linalg::Matrix x(1, 4);
  EXPECT_DEATH(model.GibbsStep(x, /*sample_hidden=*/true, nullptr),
               "needs an Rng");
}

TEST(SamplingDeathTest, WrongStartWidthChecks) {
  RbmConfig config;
  config.num_visible = 8;
  config.num_hidden = 4;
  const Rbm model(config);
  linalg::Matrix bad(2, 5);
  EXPECT_DEATH(SampleFantasies(model, bad, GibbsOptions{}), "num_visible");
}

}  // namespace
}  // namespace mcirbm::rbm
