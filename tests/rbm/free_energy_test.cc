#include "rbm/free_energy.h"

#include <cmath>

#include <gtest/gtest.h>

#include "rbm/grbm.h"
#include "rbm/rbm.h"
#include "rng/rng.h"

namespace mcirbm::rbm {
namespace {

// Bernoulli data with two template patterns.
linalg::Matrix BinaryPatterns(std::size_t n, std::size_t nv, rng::Rng* rng) {
  linalg::Matrix x(n, nv);
  for (std::size_t i = 0; i < n; ++i) {
    const bool left = i % 2 == 0;
    for (std::size_t j = 0; j < nv; ++j) {
      const double p = (left == (j < nv / 2)) ? 0.9 : 0.1;
      x(i, j) = rng->Bernoulli(p) ? 1.0 : 0.0;
    }
  }
  return x;
}

RbmConfig SmallConfig(int nv) {
  RbmConfig c;
  c.num_visible = nv;
  c.num_hidden = 8;
  c.learning_rate = 0.1;
  c.epochs = 150;
  c.batch_size = 10;
  c.momentum = 0.0;
  c.weight_decay = 0.0;
  c.seed = 9;
  return c;
}

TEST(FreeEnergyTest, UntrainedRbmFreeEnergyIsFinite) {
  const Rbm model(SmallConfig(12));
  rng::Rng rng(1);
  const linalg::Matrix x = BinaryPatterns(10, 12, &rng);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_TRUE(std::isfinite(model.FreeEnergy(x.Row(i))));
  }
}

TEST(FreeEnergyTest, TrainingLowersDataFreeEnergyRelativeToNoise) {
  rng::Rng rng(3);
  const linalg::Matrix x = BinaryPatterns(80, 16, &rng);
  // Uniform Bernoulli(0.5) noise as the reference distribution.
  linalg::Matrix noise(80, 16);
  for (std::size_t i = 0; i < noise.size(); ++i) {
    noise.data()[i] = rng.Bernoulli(0.5) ? 1.0 : 0.0;
  }
  Rbm model(SmallConfig(16));
  const double gap_before = FreeEnergyGap(model, x, noise);
  model.Train(x);
  const double gap_after = FreeEnergyGap(model, x, noise);
  // After training, the data should be much more probable than noise
  // (higher gap = reference free energy above data free energy).
  EXPECT_GT(gap_after, gap_before + 1.0);
}

TEST(FreeEnergyTest, PllImprovesWithTraining) {
  rng::Rng rng(5);
  const linalg::Matrix x = BinaryPatterns(60, 16, &rng);
  Rbm model(SmallConfig(16));
  const double pll_before = PseudoLogLikelihood(model, x, 7);
  model.Train(x);
  const double pll_after = PseudoLogLikelihood(model, x, 7);
  EXPECT_GT(pll_after, pll_before);
}

TEST(FreeEnergyTest, PllDeterministicGivenSeed) {
  rng::Rng rng(7);
  const linalg::Matrix x = BinaryPatterns(20, 10, &rng);
  const Rbm model(SmallConfig(10));
  EXPECT_DOUBLE_EQ(PseudoLogLikelihood(model, x, 11),
                   PseudoLogLikelihood(model, x, 11));
}

TEST(FreeEnergyTest, PllIsNonPositiveForBinaryData) {
  rng::Rng rng(9);
  const linalg::Matrix x = BinaryPatterns(20, 10, &rng);
  const Rbm model(SmallConfig(10));
  // log σ(·) <= 0 always, so PLL <= 0.
  EXPECT_LE(PseudoLogLikelihood(model, x, 13), 0.0);
}

TEST(FreeEnergyTest, GrbmFreeEnergyPenalizesDistanceFromBias) {
  RbmConfig config = SmallConfig(4);
  config.num_visible = 4;
  const Grbm model(config);
  // With near-zero weights and zero biases, F(v) ≈ ½|v|² + const.
  const std::vector<double> near{0.1, 0.1, 0.1, 0.1};
  const std::vector<double> far{3.0, 3.0, 3.0, 3.0};
  EXPECT_LT(model.FreeEnergy(near), model.FreeEnergy(far));
}

TEST(FreeEnergyTest, RbmFreeEnergyMatchesManualFormula) {
  RbmConfig config;
  config.num_visible = 2;
  config.num_hidden = 2;
  Rbm model(config);
  // Set explicit parameters and compare to the closed form.
  (*model.mutable_weights())(0, 0) = 0.5;
  (*model.mutable_weights())(0, 1) = -0.25;
  (*model.mutable_weights())(1, 0) = 0.0;
  (*model.mutable_weights())(1, 1) = 1.0;
  (*model.mutable_visible_bias()) = {0.3, -0.2};
  (*model.mutable_hidden_bias()) = {0.1, 0.4};
  const std::vector<double> v{1.0, 1.0};
  const double pre0 = 0.1 + 0.5 + 0.0;
  const double pre1 = 0.4 - 0.25 + 1.0;
  const double want = -(0.3 - 0.2) - std::log1p(std::exp(pre0)) -
                      std::log1p(std::exp(pre1));
  EXPECT_NEAR(model.FreeEnergy(v), want, 1e-12);
}

}  // namespace
}  // namespace mcirbm::rbm
