// Tests for the training extensions: persistent CD, sparsity
// regularization, and PCA weight initialization.
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/ops.h"
#include "rbm/grbm.h"
#include "rbm/rbm.h"
#include "rng/rng.h"

namespace mcirbm::rbm {
namespace {

linalg::Matrix BinaryPatterns(std::size_t n, std::size_t nv, rng::Rng* rng) {
  linalg::Matrix x(n, nv);
  for (std::size_t i = 0; i < n; ++i) {
    const bool left = i % 2 == 0;
    for (std::size_t j = 0; j < nv; ++j) {
      const double p = (left == (j < nv / 2)) ? 0.9 : 0.1;
      x(i, j) = rng->Bernoulli(p) ? 1.0 : 0.0;
    }
  }
  return x;
}

linalg::Matrix GaussianBlobs(std::size_t n, std::size_t nv, rng::Rng* rng) {
  linalg::Matrix x(n, nv);
  for (std::size_t i = 0; i < n; ++i) {
    const double center = (i % 2 == 0) ? -1.0 : 1.0;
    for (std::size_t j = 0; j < nv; ++j) {
      x(i, j) = rng->Gaussian(center, 0.5);
    }
  }
  return x;
}

RbmConfig BaseConfig(int nv) {
  RbmConfig c;
  c.num_visible = nv;
  c.num_hidden = 8;
  c.learning_rate = 0.05;
  c.epochs = 30;
  c.momentum = 0.0;
  c.weight_decay = 0.0;
  c.seed = 17;
  return c;
}

TEST(PersistentCdTest, TrainsAndReducesReconstructionError) {
  rng::Rng rng(19);
  const linalg::Matrix x = BinaryPatterns(60, 16, &rng);
  RbmConfig config = BaseConfig(16);
  config.use_persistent_cd = true;
  config.batch_size = 20;
  Rbm model(config);
  const auto history = model.Train(x);
  ASSERT_FALSE(history.empty());
  EXPECT_LT(history.back().reconstruction_error,
            history.front().reconstruction_error);
}

TEST(PersistentCdTest, DeterministicGivenSeed) {
  rng::Rng rng(23);
  const linalg::Matrix x = BinaryPatterns(40, 12, &rng);
  RbmConfig config = BaseConfig(12);
  config.use_persistent_cd = true;
  Rbm a(config), b(config);
  a.Train(x);
  b.Train(x);
  EXPECT_TRUE(a.weights().AllClose(b.weights(), 0.0));
}

TEST(PersistentCdTest, ChainCountConfigurable) {
  rng::Rng rng(29);
  const linalg::Matrix x = BinaryPatterns(40, 12, &rng);
  RbmConfig config = BaseConfig(12);
  config.use_persistent_cd = true;
  config.pcd_chains = 5;  // fewer chains than batch rows
  Rbm model(config);
  const auto history = model.Train(x);
  EXPECT_LT(history.back().reconstruction_error,
            history.front().reconstruction_error);
}

TEST(PersistentCdTest, ProducesDifferentModelFromPlainCd) {
  rng::Rng rng(31);
  const linalg::Matrix x = BinaryPatterns(40, 12, &rng);
  RbmConfig cd_config = BaseConfig(12);
  RbmConfig pcd_config = cd_config;
  pcd_config.use_persistent_cd = true;
  Rbm cd(cd_config), pcd(pcd_config);
  cd.Train(x);
  pcd.Train(x);
  EXPECT_FALSE(cd.weights().AllClose(pcd.weights(), 1e-9));
}

TEST(SparsityTest, PenaltyLowersMeanHiddenActivation) {
  rng::Rng rng(37);
  const linalg::Matrix x = BinaryPatterns(80, 16, &rng);

  RbmConfig plain = BaseConfig(16);
  plain.epochs = 60;
  RbmConfig sparse = plain;
  sparse.sparsity_target = 0.05;
  sparse.sparsity_cost = 2.0;

  Rbm plain_model(plain), sparse_model(sparse);
  const auto plain_hist = plain_model.Train(x);
  const auto sparse_hist = sparse_model.Train(x);

  EXPECT_LT(sparse_hist.back().mean_hidden_activation,
            plain_hist.back().mean_hidden_activation);
  EXPECT_LT(sparse_hist.back().mean_hidden_activation, 0.35);
}

TEST(SparsityTest, ActivationTelemetryInUnitRange) {
  rng::Rng rng(41);
  const linalg::Matrix x = BinaryPatterns(30, 10, &rng);
  RbmConfig config = BaseConfig(10);
  config.sparsity_target = 0.1;
  config.sparsity_cost = 1.0;
  Rbm model(config);
  for (const auto& stats : model.Train(x)) {
    EXPECT_GE(stats.mean_hidden_activation, 0.0);
    EXPECT_LE(stats.mean_hidden_activation, 1.0);
  }
}

TEST(SparsityTest, ZeroCostIsExactlyPlainTraining) {
  rng::Rng rng(43);
  const linalg::Matrix x = BinaryPatterns(30, 10, &rng);
  RbmConfig plain = BaseConfig(10);
  RbmConfig zero = plain;
  zero.sparsity_target = 0.1;
  zero.sparsity_cost = 0.0;  // disabled
  Rbm a(plain), b(zero);
  a.Train(x);
  b.Train(x);
  EXPECT_TRUE(a.weights().AllClose(b.weights(), 0.0));
}

TEST(PcaInitTest, InitialColumnsSpanPrincipalDirections) {
  rng::Rng rng(47);
  const linalg::Matrix x = GaussianBlobs(100, 8, &rng);
  RbmConfig config = BaseConfig(8);
  config.epochs = 0;  // keep the untouched init
  config.weight_init = RbmConfig::WeightInit::kPca;
  Grbm model(config);
  model.Train(x);
  // The dominant data direction is all-ones (blob centers at ±1·1).
  // Column 0 of W should be nearly parallel to it.
  std::vector<double> col0(8);
  for (std::size_t i = 0; i < 8; ++i) col0[i] = model.weights()(i, 0);
  double dot = 0, norm = 0;
  for (double v : col0) {
    dot += v;
    norm += v * v;
  }
  const double cosine =
      std::abs(dot) / (std::sqrt(norm) * std::sqrt(8.0));
  EXPECT_GT(cosine, 0.95);
}

TEST(PcaInitTest, TrainsToLowerErrorOrEqualFromStructuredInit) {
  rng::Rng rng(53);
  const linalg::Matrix x = GaussianBlobs(100, 8, &rng);
  RbmConfig config = BaseConfig(8);
  config.epochs = 10;
  config.weight_init = RbmConfig::WeightInit::kPca;
  Grbm model(config);
  const auto history = model.Train(x);
  EXPECT_LT(history.back().reconstruction_error,
            history.front().reconstruction_error * 1.5);
}

TEST(PcaInitTest, DeterministicGivenSeed) {
  rng::Rng rng(59);
  const linalg::Matrix x = GaussianBlobs(60, 6, &rng);
  RbmConfig config = BaseConfig(6);
  config.weight_init = RbmConfig::WeightInit::kPca;
  Grbm a(config), b(config);
  a.Train(x);
  b.Train(x);
  EXPECT_TRUE(a.weights().AllClose(b.weights(), 0.0));
}

// CD-k sweep: deeper chains must still train stably.
class CdkTest : public ::testing::TestWithParam<int> {};

TEST_P(CdkTest, TrainingConvergesForAnyK) {
  rng::Rng rng(61);
  const linalg::Matrix x = BinaryPatterns(50, 12, &rng);
  RbmConfig config = BaseConfig(12);
  config.cd_k = GetParam();
  Rbm model(config);
  const auto history = model.Train(x);
  EXPECT_LT(history.back().reconstruction_error,
            history.front().reconstruction_error);
}

INSTANTIATE_TEST_SUITE_P(Ks, CdkTest, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace mcirbm::rbm
