#include "voting/vote.h"

#include <gtest/gtest.h>

#include "rng/rng.h"

namespace mcirbm::voting {
namespace {

TEST(UnanimousVoteTest, FullAgreementKeepsEverything) {
  const std::vector<int> p = {0, 0, 1, 1, 1, 0};
  const LocalSupervision sup = IntegratePartitions({p, p, p},
                                                   VoteStrategy::kUnanimous);
  EXPECT_EQ(sup.num_clusters, 2);
  EXPECT_DOUBLE_EQ(sup.Coverage(), 1.0);
  EXPECT_EQ(sup.cluster_of, p);
}

TEST(UnanimousVoteTest, PermutedIdsStillAgreeAfterAlignment) {
  const std::vector<int> a = {0, 0, 1, 1, 1, 0};
  const std::vector<int> b = {1, 1, 0, 0, 0, 1};  // same partition, swapped
  const LocalSupervision sup =
      IntegratePartitions({a, b}, VoteStrategy::kUnanimous);
  EXPECT_DOUBLE_EQ(sup.Coverage(), 1.0);
  EXPECT_EQ(sup.num_clusters, 2);
}

TEST(UnanimousVoteTest, DisagreementsDropped) {
  const std::vector<int> a = {0, 0, 0, 1, 1, 1};
  const std::vector<int> b = {0, 0, 1, 1, 1, 1};  // disagrees at index 2
  const LocalSupervision sup =
      IntegratePartitions({a, b}, VoteStrategy::kUnanimous);
  EXPECT_EQ(sup.cluster_of[2], -1);
  EXPECT_EQ(sup.NumCredible(), 5u);
}

TEST(UnanimousVoteTest, ThreeWayDisagreementDropsInstance) {
  // Three clusterers each put instance 0 somewhere else.
  const std::vector<int> a = {0, 0, 0, 1, 1, 2, 2};
  const std::vector<int> b = {1, 0, 0, 1, 1, 2, 2};
  const std::vector<int> c = {2, 0, 0, 1, 1, 2, 2};
  const LocalSupervision sup =
      IntegratePartitions({a, b, c}, VoteStrategy::kUnanimous);
  EXPECT_EQ(sup.cluster_of[0], -1);
  for (int i = 1; i < 7; ++i) EXPECT_GE(sup.cluster_of[i], 0);
}

TEST(MajorityVoteTest, TwoOfThreeSuffices) {
  const std::vector<int> a = {0, 0, 0, 1, 1, 1};
  const std::vector<int> b = {0, 0, 0, 1, 1, 1};
  const std::vector<int> c = {1, 0, 0, 1, 1, 0};  // dissents at 0 and 5
  const LocalSupervision unanimous =
      IntegratePartitions({a, b, c}, VoteStrategy::kUnanimous);
  const LocalSupervision majority =
      IntegratePartitions({a, b, c}, VoteStrategy::kMajority);
  EXPECT_EQ(unanimous.cluster_of[0], -1);
  EXPECT_GE(majority.cluster_of[0], 0);
  EXPECT_GE(majority.NumCredible(), unanimous.NumCredible());
}

TEST(MajorityVoteTest, TwoPartitionsRequireBothToAgree) {
  // With 2 partitions, strict majority = 2 votes = unanimous.
  const std::vector<int> a = {0, 0, 1, 1};
  const std::vector<int> b = {0, 1, 1, 1};
  const LocalSupervision maj =
      IntegratePartitions({a, b}, VoteStrategy::kMajority);
  const LocalSupervision unan =
      IntegratePartitions({a, b}, VoteStrategy::kUnanimous);
  EXPECT_EQ(maj.cluster_of, unan.cluster_of);
}

TEST(VoteTest, MinClusterSizeFiltersSmallClusters) {
  const std::vector<int> p = {0, 0, 0, 0, 1, 2, 2};
  // Cluster 1 has a single member -> dropped with min size 2.
  const LocalSupervision sup =
      IntegratePartitions({p}, VoteStrategy::kUnanimous, 2);
  EXPECT_EQ(sup.cluster_of[4], -1);
  EXPECT_EQ(sup.num_clusters, 2);
}

TEST(VoteTest, MinClusterSizeCanEmptyEverything) {
  const std::vector<int> p = {0, 1, 2, 3};
  const LocalSupervision sup =
      IntegratePartitions({p}, VoteStrategy::kUnanimous, 2);
  EXPECT_EQ(sup.num_clusters, 0);
  EXPECT_EQ(sup.NumCredible(), 0u);
  EXPECT_DOUBLE_EQ(sup.Coverage(), 0.0);
}

TEST(VoteTest, SinglePartitionPassesThrough) {
  const std::vector<int> p = {0, 0, 1, 1};
  const LocalSupervision sup =
      IntegratePartitions({p}, VoteStrategy::kUnanimous);
  EXPECT_EQ(sup.cluster_of, p);
}

TEST(VoteTest, ResultIdsAreCompact) {
  const std::vector<int> a = {0, 0, 2, 2, 5, 5};
  const LocalSupervision sup =
      IntegratePartitions({a}, VoteStrategy::kUnanimous);
  EXPECT_EQ(sup.num_clusters, 3);
  for (int c : sup.cluster_of) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 3);
  }
}

TEST(VoteTest, MembersGroupsCredibleInstances) {
  const std::vector<int> a = {0, 0, 1, 1, 1};
  const std::vector<int> b = {0, 1, 1, 1, 1};
  const LocalSupervision sup =
      IntegratePartitions({a, b}, VoteStrategy::kUnanimous);
  const auto members = sup.Members();
  ASSERT_EQ(members.size(), static_cast<std::size_t>(sup.num_clusters));
  std::size_t total = 0;
  for (const auto& m : members) total += m.size();
  EXPECT_EQ(total, sup.NumCredible());
}

TEST(VoteDeathTest, EmptyPartitionListAborts) {
  EXPECT_DEATH(IntegratePartitions({}, VoteStrategy::kUnanimous),
               "CHECK failed");
}

TEST(VoteDeathTest, LengthMismatchAborts) {
  EXPECT_DEATH(
      IntegratePartitions({{0, 1}, {0}}, VoteStrategy::kUnanimous),
      "CHECK failed");
}


// ---- Property sweep over random partition ensembles ----

class VotePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(VotePropertyTest, MajorityCoverageAtLeastUnanimous) {
  rng::Rng rng(1000 + GetParam());
  const int n = 60;
  std::vector<std::vector<int>> partitions(3, std::vector<int>(n));
  for (auto& p : partitions) {
    for (int& v : p) v = static_cast<int>(rng.UniformIndex(3));
  }
  const LocalSupervision unan =
      IntegratePartitions(partitions, VoteStrategy::kUnanimous);
  const LocalSupervision maj =
      IntegratePartitions(partitions, VoteStrategy::kMajority);
  EXPECT_GE(maj.NumCredible(), unan.NumCredible());
}

TEST_P(VotePropertyTest, SelfEnsembleAlwaysFullCoverage) {
  rng::Rng rng(2000 + GetParam());
  const int n = 40;
  std::vector<int> p(n);
  for (int& v : p) v = static_cast<int>(rng.UniformIndex(4));
  // Make sure every cluster has >= 2 members so none is size-filtered.
  for (int c = 0; c < 4; ++c) {
    p[2 * c] = c;
    p[2 * c + 1] = c;
  }
  const LocalSupervision sup =
      IntegratePartitions({p, p, p}, VoteStrategy::kUnanimous);
  EXPECT_DOUBLE_EQ(sup.Coverage(), 1.0);
}

TEST_P(VotePropertyTest, CredibleIdsAlwaysCompactAndValid) {
  rng::Rng rng(3000 + GetParam());
  const int n = 50;
  std::vector<std::vector<int>> partitions(2, std::vector<int>(n));
  for (auto& p : partitions) {
    for (int& v : p) v = static_cast<int>(rng.UniformIndex(5));
  }
  const LocalSupervision sup =
      IntegratePartitions(partitions, VoteStrategy::kUnanimous);
  sup.CheckValid();
  std::vector<bool> seen(std::max(sup.num_clusters, 1), false);
  for (int c : sup.cluster_of) {
    if (c >= 0) seen[c] = true;
  }
  for (int c = 0; c < sup.num_clusters; ++c) {
    EXPECT_TRUE(seen[c]) << "cluster " << c << " empty but not compacted";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomEnsembles, VotePropertyTest,
                         ::testing::Range(0, 8));
}  // namespace
}  // namespace mcirbm::voting
