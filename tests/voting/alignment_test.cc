#include "voting/alignment.h"

#include <gtest/gtest.h>

namespace mcirbm::voting {
namespace {

TEST(AlignmentTest, PermutedIdsAreMappedBack) {
  const std::vector<int> ref = {0, 0, 1, 1, 2, 2};
  const std::vector<int> other = {2, 2, 0, 0, 1, 1};  // same partition
  const auto aligned = AlignToReference(ref, 3, other, 3);
  EXPECT_EQ(aligned, ref);
}

TEST(AlignmentTest, IdenticalPartitionUnchanged) {
  const std::vector<int> ref = {0, 1, 0, 1};
  const auto aligned = AlignToReference(ref, 2, ref, 2);
  EXPECT_EQ(aligned, ref);
}

TEST(AlignmentTest, PartialOverlapMapsToMajorityPartner) {
  const std::vector<int> ref = {0, 0, 0, 1, 1, 1};
  const std::vector<int> other = {1, 1, 0, 0, 0, 0};
  // other's cluster 1 overlaps ref 0 (2 inst); other's 0 overlaps ref 1
  // more (3 of 4).
  const auto aligned = AlignToReference(ref, 2, other, 2);
  EXPECT_EQ(aligned, (std::vector<int>{0, 0, 1, 1, 1, 1}));
}

TEST(AlignmentTest, ExtraClustersGetFreshIds) {
  const std::vector<int> ref = {0, 0, 0, 0};
  const std::vector<int> other = {0, 0, 1, 2};
  const auto aligned = AlignToReference(ref, 1, other, 3);
  // Exactly one of other's clusters maps to ref id 0; the others get ids
  // >= 1 (fresh).
  int mapped_to_zero = 0;
  for (int a : aligned) mapped_to_zero += a == 0;
  EXPECT_EQ(mapped_to_zero, 2);  // the largest-overlap cluster (size 2)
  EXPECT_GE(aligned[2], 1);
  EXPECT_GE(aligned[3], 1);
  EXPECT_NE(aligned[2], aligned[3]);
}

TEST(AlignmentTest, UnassignedEntriesPreserved) {
  const std::vector<int> ref = {0, 0, 1, 1};
  const std::vector<int> other = {0, -1, 1, 1};
  const auto aligned = AlignToReference(ref, 2, other, 2);
  EXPECT_EQ(aligned[1], -1);
  EXPECT_EQ(aligned[0], 0);
  EXPECT_EQ(aligned[2], 1);
}

TEST(AlignmentTest, FewerClustersThanReference) {
  const std::vector<int> ref = {0, 0, 1, 1, 2, 2};
  const std::vector<int> other = {0, 0, 0, 1, 1, 1};
  const auto aligned = AlignToReference(ref, 3, other, 2);
  // other 0 -> ref 0 (2 overlap), other 1 -> ref 2 (2 overlap).
  EXPECT_EQ(aligned, (std::vector<int>{0, 0, 0, 2, 2, 2}));
}

TEST(AlignmentDeathTest, LengthMismatchAborts) {
  EXPECT_DEATH(AlignToReference({0}, 1, {0, 1}, 2), "CHECK failed");
}

}  // namespace
}  // namespace mcirbm::voting
