// Edge-case tests for IntegratePartitions: abstaining voters (-1 ids, as
// produced by DBSCAN noise), tie handling under majority voting, the
// min_cluster_size filter, and large heterogeneous ensembles.
#include <gtest/gtest.h>

#include "voting/vote.h"

namespace mcirbm::voting {
namespace {

TEST(VoteExtendedTest, AbstentionBlocksUnanimityButNotMajority) {
  // Voter 3 abstains on instance 2; the other three agree everywhere.
  const std::vector<std::vector<int>> partitions = {
      {0, 0, 1, 1},
      {0, 0, 1, 1},
      {0, 0, 1, 1},
      {0, 0, -1, 1},
  };
  const auto unanimous =
      IntegratePartitions(partitions, VoteStrategy::kUnanimous, 1);
  EXPECT_EQ(unanimous.cluster_of[2], -1) << "abstention breaks unanimity";
  EXPECT_GE(unanimous.cluster_of[0], 0);

  const auto majority =
      IntegratePartitions(partitions, VoteStrategy::kMajority, 1);
  EXPECT_GE(majority.cluster_of[2], 0) << "3 of 4 real votes is a majority";
}

TEST(VoteExtendedTest, AllVotersAbstainOnInstance) {
  const std::vector<std::vector<int>> partitions = {
      {0, -1, 1},
      {0, -1, 1},
  };
  const auto sup =
      IntegratePartitions(partitions, VoteStrategy::kUnanimous, 1);
  EXPECT_EQ(sup.cluster_of[1], -1);
  EXPECT_GE(sup.cluster_of[0], 0);
  EXPECT_GE(sup.cluster_of[2], 0);
}

TEST(VoteExtendedTest, MajorityNeedsStrictlyMoreThanHalf) {
  // 2-2 split across four voters (after alignment the ids differ): no
  // candidate reaches 3 votes, so the instance stays non-credible.
  const std::vector<std::vector<int>> partitions = {
      {0, 0, 1, 1, 0},
      {0, 0, 1, 1, 0},
      {0, 1, 1, 0, 0},
      {0, 1, 1, 0, 0},
  };
  const auto sup =
      IntegratePartitions(partitions, VoteStrategy::kMajority, 1);
  EXPECT_EQ(sup.cluster_of[1], -1) << "2-2 tie is not a strict majority";
  EXPECT_EQ(sup.cluster_of[3], -1);
  EXPECT_GE(sup.cluster_of[0], 0);
  EXPECT_GE(sup.cluster_of[2], 0);
  EXPECT_GE(sup.cluster_of[4], 0);
}

TEST(VoteExtendedTest, MinClusterSizeDropsTinyConsensusClusters) {
  // Consensus forms clusters of sizes 4 and 1.
  const std::vector<std::vector<int>> partitions = {
      {0, 0, 0, 0, 1},
      {0, 0, 0, 0, 1},
  };
  const auto strict =
      IntegratePartitions(partitions, VoteStrategy::kUnanimous, 2);
  EXPECT_EQ(strict.num_clusters, 1);
  EXPECT_EQ(strict.cluster_of[4], -1) << "singleton cluster dropped";

  const auto lenient =
      IntegratePartitions(partitions, VoteStrategy::kUnanimous, 1);
  EXPECT_EQ(lenient.num_clusters, 2);
  EXPECT_GE(lenient.cluster_of[4], 0);
}

TEST(VoteExtendedTest, SingleVoterIsItsOwnConsensus) {
  const std::vector<std::vector<int>> partitions = {{2, 2, 5, 5, 5}};
  const auto sup =
      IntegratePartitions(partitions, VoteStrategy::kUnanimous, 1);
  EXPECT_EQ(sup.num_clusters, 2);
  EXPECT_EQ(sup.cluster_of[0], sup.cluster_of[1]);
  EXPECT_EQ(sup.cluster_of[2], sup.cluster_of[3]);
  EXPECT_NE(sup.cluster_of[0], sup.cluster_of[2]);
}

TEST(VoteExtendedTest, LabelPermutedVotersStillAgreeAfterAlignment) {
  // Same partition under three different labelings: alignment must map
  // them together and unanimity must hold everywhere.
  const std::vector<std::vector<int>> partitions = {
      {0, 0, 1, 1, 2, 2},
      {2, 2, 0, 0, 1, 1},
      {1, 1, 2, 2, 0, 0},
  };
  const auto sup =
      IntegratePartitions(partitions, VoteStrategy::kUnanimous, 1);
  EXPECT_EQ(sup.num_clusters, 3);
  EXPECT_DOUBLE_EQ(sup.Coverage(), 1.0);
}

TEST(VoteExtendedTest, VoterWithMoreClustersThanReference) {
  // The second voter over-segments cluster 1; its sub-cluster not mapped
  // onto the reference becomes disagreement on those instances.
  const std::vector<std::vector<int>> partitions = {
      {0, 0, 0, 1, 1, 1},
      {0, 0, 0, 1, 2, 2},
  };
  const auto sup =
      IntegratePartitions(partitions, VoteStrategy::kUnanimous, 1);
  // Instances 0-2 agree. Max-overlap alignment maps the voter's
  // 2-element sub-cluster {4,5} onto reference id 1, so 4-5 stay
  // credible while instance 3 (the 1-element sub-cluster) loses
  // unanimity.
  EXPECT_GE(sup.cluster_of[0], 0);
  EXPECT_GE(sup.cluster_of[1], 0);
  EXPECT_GE(sup.cluster_of[2], 0);
  EXPECT_EQ(sup.cluster_of[3], -1);
  EXPECT_GE(sup.cluster_of[4], 0);
  EXPECT_GE(sup.cluster_of[5], 0);
}

TEST(VoteExtendedTest, CoverageAndMembersConsistent) {
  const std::vector<std::vector<int>> partitions = {
      {0, 0, 1, 1, -1, 0},
      {0, 0, 1, -1, 1, 0},
  };
  const auto sup =
      IntegratePartitions(partitions, VoteStrategy::kUnanimous, 1);
  std::size_t member_total = 0;
  for (const auto& cluster : sup.Members()) member_total += cluster.size();
  EXPECT_EQ(member_total, sup.NumCredible());
  EXPECT_DOUBLE_EQ(sup.Coverage(),
                   static_cast<double>(member_total) / 6.0);
}

}  // namespace
}  // namespace mcirbm::voting
