#include "clustering/agglomerative.h"

#include <gtest/gtest.h>

#include "metrics/external.h"
#include "rng/rng.h"

namespace mcirbm::clustering {
namespace {

using linalg::Matrix;

Matrix Blobs(const std::vector<std::pair<double, double>>& centers,
             std::size_t per, double spread, rng::Rng* rng,
             std::vector<int>* labels) {
  Matrix x(centers.size() * per, 2);
  labels->assign(centers.size() * per, 0);
  for (std::size_t c = 0; c < centers.size(); ++c) {
    for (std::size_t i = 0; i < per; ++i) {
      const std::size_t r = c * per + i;
      x(r, 0) = rng->Gaussian(centers[c].first, spread);
      x(r, 1) = rng->Gaussian(centers[c].second, spread);
      (*labels)[r] = static_cast<int>(c);
    }
  }
  return x;
}

class LinkageTest : public ::testing::TestWithParam<Linkage> {};

TEST_P(LinkageTest, RecoversWellSeparatedBlobs) {
  rng::Rng rng(21);
  std::vector<int> labels;
  const Matrix x = Blobs({{0, 0}, {20, 0}, {0, 20}}, 25, 0.5, &rng, &labels);
  const Agglomerative agg(3, GetParam());
  const ClusteringResult r = agg.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 3);
  EXPECT_GT(metrics::ClusteringAccuracy(labels, r.assignment), 0.99)
      << LinkageName(GetParam());
}

TEST_P(LinkageTest, DeterministicAcrossSeeds) {
  rng::Rng rng(22);
  std::vector<int> labels;
  const Matrix x = Blobs({{0, 0}, {8, 8}}, 20, 1.0, &rng, &labels);
  const Agglomerative agg(2, GetParam());
  const ClusteringResult a = agg.Cluster(x, 1);
  const ClusteringResult b = agg.Cluster(x, 999);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST_P(LinkageTest, EveryInstanceAssignedCompactIds) {
  rng::Rng rng(23);
  std::vector<int> labels;
  const Matrix x = Blobs({{0, 0}, {5, 5}}, 15, 1.5, &rng, &labels);
  const Agglomerative agg(4, GetParam());
  const ClusteringResult r = agg.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 4);
  std::vector<bool> seen(4, false);
  for (int id : r.assignment) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, 4);
    seen[id] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

INSTANTIATE_TEST_SUITE_P(AllLinkages, LinkageTest,
                         ::testing::Values(Linkage::kSingle,
                                           Linkage::kComplete,
                                           Linkage::kAverage, Linkage::kWard),
                         [](const auto& info) {
                           return LinkageName(info.param);
                         });

TEST(AgglomerativeTest, KEqualsNGivesSingletons) {
  Matrix x{{0, 0}, {1, 1}, {2, 2}};
  const Agglomerative agg(3, Linkage::kAverage);
  const ClusteringResult r = agg.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 3);
  EXPECT_EQ(r.iterations, 0);  // no merges needed
}

TEST(AgglomerativeTest, KOneMergesEverything) {
  Matrix x{{0, 0}, {1, 1}, {50, 50}, {51, 51}};
  const Agglomerative agg(1, Linkage::kComplete);
  const ClusteringResult r = agg.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 1);
  for (int id : r.assignment) EXPECT_EQ(id, 0);
}

TEST(AgglomerativeTest, KLargerThanNClampsToN) {
  Matrix x{{0, 0}, {9, 9}};
  const Agglomerative agg(10, Linkage::kWard);
  const ClusteringResult r = agg.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 2);
}

TEST(AgglomerativeTest, SingleLinkageFollowsChains) {
  // A chain of near points plus one far point: single linkage keeps the
  // whole chain together where complete linkage splits it.
  Matrix x{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}, {30, 0}};
  const std::vector<int> want_chain = {0, 0, 0, 0, 0, 1};

  const Agglomerative single(2, Linkage::kSingle);
  const ClusteringResult r = single.Cluster(x, 0);
  EXPECT_EQ(metrics::ClusteringAccuracy(want_chain, r.assignment), 1.0);
}

TEST(AgglomerativeTest, WardPrefersBalancedCompactClusters) {
  rng::Rng rng(29);
  std::vector<int> labels;
  // Two elongated but separated blobs.
  Matrix x(40, 2);
  labels.assign(40, 0);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = rng.Gaussian(0, 2.0);
    x(i, 1) = rng.Gaussian(0, 0.2);
    x(20 + i, 0) = rng.Gaussian(0, 2.0);
    x(20 + i, 1) = rng.Gaussian(8, 0.2);
    labels[20 + i] = 1;
  }
  const Agglomerative ward(2, Linkage::kWard);
  const ClusteringResult r = ward.Cluster(x, 0);
  EXPECT_GT(metrics::ClusteringAccuracy(labels, r.assignment), 0.95);
}

}  // namespace
}  // namespace mcirbm::clustering
