#include "clustering/affinity_propagation.h"

#include <gtest/gtest.h>

#include "clustering/partition.h"
#include "data/synthetic.h"
#include "metrics/external.h"

namespace mcirbm::clustering {
namespace {

data::Dataset Blobs(int classes, int n, double separation,
                    std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "blobs";
  spec.num_classes = classes;
  spec.num_instances = n;
  spec.num_features = 4;
  spec.separation = separation;
  return data::GenerateGaussianMixture(spec, seed);
}

TEST(AffinityPropagationTest, RecoversWellSeparatedBlobs) {
  const auto d = Blobs(3, 120, 10.0, 1);
  AffinityPropagationConfig cfg;
  cfg.target_clusters = 3;
  const auto result = AffinityPropagation(cfg).Cluster(d.x, 1);
  EXPECT_GT(metrics::ClusteringAccuracy(d.labels, result.assignment), 0.9);
}

TEST(AffinityPropagationTest, TargetClusterSearchHitsK) {
  const auto d = Blobs(3, 90, 8.0, 2);
  AffinityPropagationConfig cfg;
  cfg.target_clusters = 3;
  const auto result = AffinityPropagation(cfg).Cluster(d.x, 1);
  EXPECT_EQ(result.num_clusters, 3);
}

TEST(AffinityPropagationTest, MedianPreferenceYieldsSomeClusters) {
  const auto d = Blobs(3, 80, 6.0, 3);
  AffinityPropagationConfig cfg;  // target_clusters = 0 -> median pref
  const auto result = AffinityPropagation(cfg).Cluster(d.x, 1);
  EXPECT_GE(result.num_clusters, 1);
  EXPECT_LT(result.num_clusters, 80);
}

TEST(AffinityPropagationTest, AssignmentIsCompactAndComplete) {
  const auto d = Blobs(2, 70, 5.0, 4);
  AffinityPropagationConfig cfg;
  cfg.target_clusters = 2;
  auto result = AffinityPropagation(cfg).Cluster(d.x, 1);
  EXPECT_EQ(result.assignment.size(), 70u);
  std::vector<int> copy = result.assignment;
  EXPECT_EQ(CompactRelabel(&copy), result.num_clusters);
  EXPECT_EQ(copy, result.assignment);  // already compact
}

TEST(AffinityPropagationTest, DeterministicGivenSeed) {
  const auto d = Blobs(2, 60, 6.0, 5);
  AffinityPropagationConfig cfg;
  cfg.target_clusters = 2;
  const auto a = AffinityPropagation(cfg).Cluster(d.x, 9);
  const auto b = AffinityPropagation(cfg).Cluster(d.x, 9);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(AffinityPropagationTest, ConvergesOnEasyData) {
  const auto d = Blobs(2, 60, 12.0, 6);
  AffinityPropagationConfig cfg;  // median preference
  const auto result = AffinityPropagation(cfg).Cluster(d.x, 1);
  EXPECT_TRUE(result.converged);
}

TEST(AffinityPropagationDeathTest, BadDampingAborts) {
  AffinityPropagationConfig cfg;
  cfg.damping = 0.3;
  EXPECT_DEATH(AffinityPropagation{cfg}, "CHECK failed");
}

TEST(AffinityPropagationTest, SingleInstanceIsTrivialCluster) {
  linalg::Matrix x(1, 2);
  AffinityPropagationConfig cfg;
  const ClusteringResult r = AffinityPropagation(cfg).Cluster(x, 1);
  EXPECT_EQ(r.num_clusters, 1);
  ASSERT_EQ(r.assignment.size(), 1u);
  EXPECT_EQ(r.assignment[0], 0);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace mcirbm::clustering
