#include "clustering/dbscan.h"

#include <gtest/gtest.h>

#include "metrics/external.h"
#include "rng/rng.h"

namespace mcirbm::clustering {
namespace {

using linalg::Matrix;

Matrix TwoBlobsAndOutlier(rng::Rng* rng, std::vector<int>* labels) {
  Matrix x(41, 2);
  labels->assign(41, 0);
  for (std::size_t i = 0; i < 20; ++i) {
    x(i, 0) = rng->Gaussian(0, 0.3);
    x(i, 1) = rng->Gaussian(0, 0.3);
    (*labels)[i] = 0;
    x(20 + i, 0) = rng->Gaussian(10, 0.3);
    x(20 + i, 1) = rng->Gaussian(10, 0.3);
    (*labels)[20 + i] = 1;
  }
  x(40, 0) = 100;  // isolated outlier
  x(40, 1) = -100;
  (*labels)[40] = -1;
  return x;
}

TEST(DbscanTest, FindsTwoBlobsAndMarksOutlierNoise) {
  rng::Rng rng(31);
  std::vector<int> labels;
  const Matrix x = TwoBlobsAndOutlier(&rng, &labels);
  const Dbscan dbscan({.eps = 1.5, .min_points = 4});
  const ClusteringResult r = dbscan.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 2);
  EXPECT_EQ(r.assignment[40], -1) << "outlier must be noise";
  // Blob members agree with labels.
  std::vector<int> truth(labels.begin(), labels.begin() + 40);
  std::vector<int> pred(r.assignment.begin(), r.assignment.begin() + 40);
  EXPECT_EQ(metrics::ClusteringAccuracy(truth, pred), 1.0);
}

TEST(DbscanTest, SelfTuningFindsBlobsWithoutEps) {
  rng::Rng rng(37);
  std::vector<int> labels;
  const Matrix x = TwoBlobsAndOutlier(&rng, &labels);
  const Dbscan dbscan({.eps = 0.0, .min_points = 4});
  const ClusteringResult r = dbscan.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 2);
  EXPECT_EQ(r.assignment[40], -1);
}

TEST(DbscanTest, TinyEpsMakesEverythingNoise) {
  rng::Rng rng(41);
  std::vector<int> labels;
  const Matrix x = TwoBlobsAndOutlier(&rng, &labels);
  const Dbscan dbscan({.eps = 1e-9, .min_points = 4});
  const ClusteringResult r = dbscan.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 0);
  for (int id : r.assignment) EXPECT_EQ(id, -1);
}

TEST(DbscanTest, HugeEpsMakesOneCluster) {
  rng::Rng rng(43);
  std::vector<int> labels;
  const Matrix x = TwoBlobsAndOutlier(&rng, &labels);
  const Dbscan dbscan({.eps = 1e6, .min_points = 4});
  const ClusteringResult r = dbscan.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 1);
  for (int id : r.assignment) EXPECT_EQ(id, 0);
}

TEST(DbscanTest, DeterministicAcrossSeeds) {
  rng::Rng rng(47);
  std::vector<int> labels;
  const Matrix x = TwoBlobsAndOutlier(&rng, &labels);
  const Dbscan dbscan({.eps = 1.0, .min_points = 3});
  EXPECT_EQ(dbscan.Cluster(x, 1).assignment, dbscan.Cluster(x, 2).assignment);
}

TEST(DbscanTest, MinPointsOneAssignsEverything) {
  Matrix x{{0, 0}, {100, 100}};
  const Dbscan dbscan({.eps = 1.0, .min_points = 1});
  const ClusteringResult r = dbscan.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 2);
  for (int id : r.assignment) EXPECT_GE(id, 0);
}

TEST(DbscanTest, BorderPointJoinsCoreCluster) {
  // 5 core points at spacing 1 with eps 1.2, plus a border point within
  // eps of the end but with too few neighbours to be core itself.
  Matrix x{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}, {5.1, 0}};
  const Dbscan dbscan({.eps = 1.2, .min_points = 3});
  const ClusteringResult r = dbscan.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 1);
  EXPECT_EQ(r.assignment[5], 0) << "border point belongs to the cluster";
}

TEST(DbscanTest, SelfTuneEpsPositiveAndScalesWithData) {
  rng::Rng rng(53);
  Matrix small(30, 2), large(30, 2);
  for (std::size_t i = 0; i < 30; ++i) {
    const double a = rng.Gaussian(), b = rng.Gaussian();
    small(i, 0) = a;
    small(i, 1) = b;
    large(i, 0) = 100 * a;
    large(i, 1) = 100 * b;
  }
  const double eps_small = Dbscan::SelfTuneEps(small, 4, 50);
  const double eps_large = Dbscan::SelfTuneEps(large, 4, 50);
  EXPECT_GT(eps_small, 0);
  EXPECT_NEAR(eps_large / eps_small, 100.0, 1.0);
}

TEST(DbscanTest, NoiseComposesWithVotingSemantics) {
  // The -1 convention must survive into downstream consumers: noise ids
  // are strictly -1, cluster ids compact from 0.
  rng::Rng rng(59);
  std::vector<int> labels;
  const Matrix x = TwoBlobsAndOutlier(&rng, &labels);
  const Dbscan dbscan({.eps = 1.5, .min_points = 4});
  const ClusteringResult r = dbscan.Cluster(x, 0);
  for (int id : r.assignment) {
    EXPECT_GE(id, -1);
    EXPECT_LT(id, r.num_clusters);
  }
}

}  // namespace
}  // namespace mcirbm::clustering
