#include "clustering/density_peaks.h"

#include <gtest/gtest.h>

#include "clustering/partition.h"

#include "data/synthetic.h"
#include "metrics/external.h"

namespace mcirbm::clustering {
namespace {

data::Dataset Blobs(int classes, int n, double separation,
                    std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "blobs";
  spec.num_classes = classes;
  spec.num_instances = n;
  spec.num_features = 4;
  spec.separation = separation;
  return data::GenerateGaussianMixture(spec, seed);
}

TEST(DensityPeaksTest, RecoversWellSeparatedBlobs) {
  const auto d = Blobs(3, 150, 10.0, 1);
  DensityPeaksConfig cfg;
  cfg.k = 3;
  const auto result = DensityPeaks(cfg).Cluster(d.x, 0);
  EXPECT_EQ(result.num_clusters, 3);
  EXPECT_GT(metrics::ClusteringAccuracy(d.labels, result.assignment), 0.95);
}

TEST(DensityPeaksTest, IsDeterministic) {
  const auto d = Blobs(2, 80, 6.0, 2);
  DensityPeaksConfig cfg;
  cfg.k = 2;
  const auto a = DensityPeaks(cfg).Cluster(d.x, 1);
  const auto b = DensityPeaks(cfg).Cluster(d.x, 999);  // seed ignored
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(DensityPeaksTest, EveryInstanceAssigned) {
  const auto d = Blobs(3, 100, 5.0, 3);
  DensityPeaksConfig cfg;
  cfg.k = 3;
  const auto result = DensityPeaks(cfg).Cluster(d.x, 0);
  for (int a : result.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 3);
  }
}

TEST(DensityPeaksTest, ExactlyKClusters) {
  const auto d = Blobs(2, 120, 2.0, 4);
  for (int k = 1; k <= 4; ++k) {
    DensityPeaksConfig cfg;
    cfg.k = k;
    const auto result = DensityPeaks(cfg).Cluster(d.x, 0);
    std::vector<int> assignment = result.assignment;
    EXPECT_EQ(NumClusters(assignment), k) << "k=" << k;
  }
}

TEST(DensityPeaksTest, HardCutoffKernelAlsoWorks) {
  const auto d = Blobs(3, 150, 10.0, 5);
  DensityPeaksConfig cfg;
  cfg.k = 3;
  cfg.gaussian_kernel = false;
  const auto result = DensityPeaks(cfg).Cluster(d.x, 0);
  // The hard-cutoff rho has many ties, so it trails the Gaussian kernel;
  // it must still broadly recover the blobs.
  EXPECT_GT(metrics::ClusteringAccuracy(d.labels, result.assignment), 0.7);
}

TEST(DensityPeaksTest, DcPercentileAffectsButStaysValid) {
  const auto d = Blobs(3, 90, 8.0, 6);
  for (double pct : {0.5, 2.0, 10.0}) {
    DensityPeaksConfig cfg;
    cfg.k = 3;
    cfg.dc_percentile = pct;
    const auto result = DensityPeaks(cfg).Cluster(d.x, 0);
    EXPECT_EQ(result.num_clusters, 3);
  }
}

TEST(DensityPeaksTest, CentersAreHighDensityPoints) {
  // Two dense blobs plus one far outlier: the outlier must not become a
  // center when k=2 (it has high delta but negligible rho).
  data::Dataset d = Blobs(2, 60, 12.0, 7);
  linalg::Matrix x(d.x.rows() + 1, d.x.cols());
  for (std::size_t i = 0; i < d.x.rows(); ++i) {
    for (std::size_t j = 0; j < d.x.cols(); ++j) x(i, j) = d.x(i, j);
  }
  for (std::size_t j = 0; j < x.cols(); ++j) x(d.x.rows(), j) = 1e3;
  DensityPeaksConfig cfg;
  cfg.k = 2;
  const auto result = DensityPeaks(cfg).Cluster(x, 0);
  // The outlier joins one of the two real clusters rather than forming its
  // own: all three labels {0,1} only.
  EXPECT_EQ(result.num_clusters, 2);
}

TEST(DensityPeaksDeathTest, InvalidConfigAborts) {
  DensityPeaksConfig cfg;
  cfg.dc_percentile = 0;
  EXPECT_DEATH(DensityPeaks{cfg}, "CHECK failed");
}

}  // namespace
}  // namespace mcirbm::clustering
