#include "clustering/partition.h"

#include <gtest/gtest.h>

namespace mcirbm::clustering {
namespace {

TEST(NumClustersTest, CountsMaxPlusOne) {
  EXPECT_EQ(NumClusters({0, 1, 2, 1}), 3);
  EXPECT_EQ(NumClusters({0, 0}), 1);
  EXPECT_EQ(NumClusters({-1, -1}), 0);
  EXPECT_EQ(NumClusters({}), 0);
}

TEST(CompactRelabelTest, FirstSeenOrder) {
  std::vector<int> a = {5, 2, 5, 9, 2};
  const int k = CompactRelabel(&a);
  EXPECT_EQ(k, 3);
  EXPECT_EQ(a, (std::vector<int>{0, 1, 0, 2, 1}));
}

TEST(CompactRelabelTest, PreservesNegatives) {
  std::vector<int> a = {-1, 7, -3, 7};
  const int k = CompactRelabel(&a);
  EXPECT_EQ(k, 1);
  EXPECT_EQ(a, (std::vector<int>{-1, 0, -1, 0}));
}

TEST(CompactRelabelTest, AlreadyCompactUnchanged) {
  std::vector<int> a = {0, 1, 2, 0};
  CompactRelabel(&a);
  EXPECT_EQ(a, (std::vector<int>{0, 1, 2, 0}));
}

TEST(ClusterSizesTest, CountsAndIgnoresUnassigned) {
  const auto sizes = ClusterSizes({0, 1, 1, -1, 0, 1}, 2);
  EXPECT_EQ(sizes[0], 2);
  EXPECT_EQ(sizes[1], 3);
}

TEST(ClusterMembersTest, GroupsIndices) {
  const auto members = ClusterMembers({1, 0, 1, -1}, 2);
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0], (std::vector<std::size_t>{1}));
  EXPECT_EQ(members[1], (std::vector<std::size_t>{0, 2}));
}

TEST(ContingencyTableTest, CountsJointOccurrences) {
  const std::vector<int> a = {0, 0, 1, 1, 1};
  const std::vector<int> b = {0, 1, 1, 1, 0};
  const auto table = ContingencyTable(a, 2, b, 2);
  EXPECT_EQ(table[0][0], 1);
  EXPECT_EQ(table[0][1], 1);
  EXPECT_EQ(table[1][0], 1);
  EXPECT_EQ(table[1][1], 2);
}

TEST(ContingencyTableTest, SkipsUnassignedInEitherSide) {
  const std::vector<int> a = {0, -1, 1};
  const std::vector<int> b = {0, 0, -1};
  const auto table = ContingencyTable(a, 2, b, 1);
  EXPECT_EQ(table[0][0], 1);
  EXPECT_EQ(table[1][0], 0);
}

TEST(NumAssignedTest, CountsNonNegative) {
  EXPECT_EQ(NumAssigned({0, -1, 3, -1}), 2u);
  EXPECT_EQ(NumAssigned({}), 0u);
}

TEST(ContingencyDeathTest, SizeMismatchAborts) {
  EXPECT_DEATH(ContingencyTable({0}, 1, {0, 1}, 2), "CHECK failed");
}

}  // namespace
}  // namespace mcirbm::clustering
