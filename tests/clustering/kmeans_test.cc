#include "clustering/kmeans.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "metrics/external.h"

namespace mcirbm::clustering {
namespace {

data::Dataset WellSeparated(int classes, int n, int d, std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "blobs";
  spec.num_classes = classes;
  spec.num_instances = n;
  spec.num_features = d;
  spec.separation = 10.0;
  return data::GenerateGaussianMixture(spec, seed);
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  const auto d = WellSeparated(3, 150, 4, 1);
  KMeansConfig cfg;
  cfg.k = 3;
  const auto result = KMeans(cfg).Cluster(d.x, 1);
  EXPECT_EQ(result.num_clusters, 3);
  EXPECT_GT(metrics::ClusteringAccuracy(d.labels, result.assignment), 0.98);
}

TEST(KMeansTest, AssignmentCoversAllInstances) {
  const auto d = WellSeparated(2, 60, 3, 2);
  KMeansConfig cfg;
  cfg.k = 2;
  const auto result = KMeans(cfg).Cluster(d.x, 2);
  EXPECT_EQ(result.assignment.size(), 60u);
  for (int a : result.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 2);
  }
}

TEST(KMeansTest, DeterministicGivenSeed) {
  const auto d = WellSeparated(3, 90, 4, 3);
  KMeansConfig cfg;
  cfg.k = 3;
  const auto a = KMeans(cfg).Cluster(d.x, 7);
  const auto b = KMeans(cfg).Cluster(d.x, 7);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(KMeansTest, MoreRestartsNeverWorseObjective) {
  const auto d = WellSeparated(4, 200, 6, 4);
  KMeansConfig one;
  one.k = 4;
  one.restarts = 1;
  KMeansConfig many = one;
  many.restarts = 8;
  const double sse1 = KMeans(one).Cluster(d.x, 5).objective;
  const double sse8 = KMeans(many).Cluster(d.x, 5).objective;
  EXPECT_LE(sse8, sse1 + 1e-9);
}

TEST(KMeansTest, KEqualsNAssignsSingletons) {
  linalg::Matrix x{{0, 0}, {10, 0}, {0, 10}};
  KMeansConfig cfg;
  cfg.k = 3;
  const auto result = KMeans(cfg).Cluster(x, 1);
  std::vector<int> sorted = result.assignment;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2}));
  EXPECT_NEAR(result.objective, 0.0, 1e-12);
}

TEST(KMeansTest, SingleClusterTrivial) {
  const auto d = WellSeparated(2, 40, 3, 5);
  KMeansConfig cfg;
  cfg.k = 1;
  const auto result = KMeans(cfg).Cluster(d.x, 1);
  for (int a : result.assignment) EXPECT_EQ(a, 0);
}

TEST(KMeansTest, ConvergesOnEasyData) {
  const auto d = WellSeparated(3, 120, 4, 6);
  KMeansConfig cfg;
  cfg.k = 3;
  cfg.max_iterations = 100;
  const auto result = KMeans(cfg).Cluster(d.x, 1);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 100);
}

TEST(KMeansTest, ComputeCentroidsMatchesClusterMeans) {
  linalg::Matrix x{{0, 0}, {2, 0}, {10, 10}};
  const std::vector<int> assignment = {0, 0, 1};
  const auto centroids = KMeans::ComputeCentroids(x, assignment, 2);
  EXPECT_DOUBLE_EQ(centroids(0, 0), 1);
  EXPECT_DOUBLE_EQ(centroids(0, 1), 0);
  EXPECT_DOUBLE_EQ(centroids(1, 0), 10);
}

TEST(KMeansDeathTest, MoreClustersThanPointsAborts) {
  linalg::Matrix x{{0.0, 0.0}};
  KMeansConfig cfg;
  cfg.k = 2;
  EXPECT_DEATH(KMeans(cfg).Cluster(x, 1), "fewer instances");
}

TEST(KMeansDeathTest, InvalidConfigAborts) {
  KMeansConfig cfg;
  cfg.k = 0;
  EXPECT_DEATH(KMeans{cfg}, "CHECK failed");
}

}  // namespace
}  // namespace mcirbm::clustering
