#include "clustering/spectral.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/ops.h"
#include "metrics/external.h"
#include "rng/rng.h"

namespace mcirbm::clustering {
namespace {

using linalg::Matrix;

Matrix Blobs(std::size_t per, double sep, rng::Rng* rng,
             std::vector<int>* labels) {
  Matrix x(2 * per, 2);
  labels->assign(2 * per, 0);
  for (std::size_t i = 0; i < per; ++i) {
    x(i, 0) = rng->Gaussian(0, 0.4);
    x(i, 1) = rng->Gaussian(0, 0.4);
    x(per + i, 0) = rng->Gaussian(sep, 0.4);
    x(per + i, 1) = rng->Gaussian(sep, 0.4);
    (*labels)[per + i] = 1;
  }
  return x;
}

// Two concentric rings: the canonical case where spectral beats K-means.
Matrix Rings(std::size_t per, rng::Rng* rng, std::vector<int>* labels) {
  Matrix x(2 * per, 2);
  labels->assign(2 * per, 0);
  for (std::size_t i = 0; i < per; ++i) {
    const double t0 = rng->Uniform(0, 2 * M_PI);
    const double t1 = rng->Uniform(0, 2 * M_PI);
    const double r0 = 1.0 + rng->Gaussian(0, 0.05);
    const double r1 = 5.0 + rng->Gaussian(0, 0.05);
    x(i, 0) = r0 * std::cos(t0);
    x(i, 1) = r0 * std::sin(t0);
    x(per + i, 0) = r1 * std::cos(t1);
    x(per + i, 1) = r1 * std::sin(t1);
    (*labels)[per + i] = 1;
  }
  return x;
}

TEST(SpectralTest, SeparatedBlobsRecovered) {
  rng::Rng rng(91);
  std::vector<int> labels;
  const Matrix x = Blobs(30, 10, &rng, &labels);
  const Spectral spectral({.num_clusters = 2});
  const ClusteringResult r = spectral.Cluster(x, 3);
  EXPECT_GT(metrics::ClusteringAccuracy(labels, r.assignment), 0.98);
}

TEST(SpectralTest, ConcentricRingsWithKnnGraph) {
  rng::Rng rng(97);
  std::vector<int> labels;
  const Matrix x = Rings(40, &rng, &labels);
  const Spectral spectral({.num_clusters = 2, .sigma = 0.5, .knn = 8});
  const ClusteringResult r = spectral.Cluster(x, 5);
  EXPECT_GT(metrics::ClusteringAccuracy(labels, r.assignment), 0.95)
      << "kNN spectral should separate the rings";
}

TEST(SpectralTest, EmbeddingRowsAreUnitNorm) {
  rng::Rng rng(101);
  std::vector<int> labels;
  const Matrix x = Blobs(20, 6, &rng, &labels);
  const Spectral spectral({.num_clusters = 2});
  const Matrix e = spectral.Embed(x);
  ASSERT_EQ(e.rows(), x.rows());
  ASSERT_EQ(e.cols(), 2u);
  for (std::size_t i = 0; i < e.rows(); ++i) {
    double norm = 0;
    for (std::size_t j = 0; j < e.cols(); ++j) norm += e(i, j) * e(i, j);
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-9) << "row " << i;
  }
}

TEST(SpectralTest, EmbeddingSeparatesComponents) {
  // Two far blobs: the graph is (nearly) disconnected, so within-blob
  // embedding rows nearly coincide and across-blob rows differ.
  rng::Rng rng(103);
  std::vector<int> labels;
  const Matrix x = Blobs(15, 50, &rng, &labels);
  const Spectral spectral({.num_clusters = 2, .sigma = 1.0});
  const Matrix e = spectral.Embed(x);
  double max_within = 0, min_across = 1e9;
  for (std::size_t i = 0; i < e.rows(); ++i) {
    for (std::size_t j = i + 1; j < e.rows(); ++j) {
      const double d =
          std::sqrt(linalg::SquaredDistance(e.Row(i), e.Row(j)));
      if (labels[i] == labels[j]) {
        max_within = std::max(max_within, d);
      } else {
        min_across = std::min(min_across, d);
      }
    }
  }
  EXPECT_LT(max_within, min_across);
}

TEST(SpectralTest, DeterministicGivenSeed) {
  rng::Rng rng(107);
  std::vector<int> labels;
  const Matrix x = Blobs(20, 8, &rng, &labels);
  const Spectral spectral({.num_clusters = 2});
  EXPECT_EQ(spectral.Cluster(x, 9).assignment,
            spectral.Cluster(x, 9).assignment);
}

TEST(SpectralTest, KLargerThanNClamps) {
  Matrix x{{0, 0}, {1, 1}, {10, 10}};
  const Spectral spectral({.num_clusters = 5});
  const ClusteringResult r = spectral.Cluster(x, 0);
  EXPECT_LE(r.num_clusters, 3);
  for (int id : r.assignment) EXPECT_GE(id, 0);
}

class SpectralKSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SpectralKSweepTest, KBlobsRecovered) {
  const int k = GetParam();
  rng::Rng rng(200 + k);
  const std::size_t per = 15;
  Matrix x(per * k, 2);
  std::vector<int> labels(per * k);
  for (int c = 0; c < k; ++c) {
    for (std::size_t i = 0; i < per; ++i) {
      const std::size_t r = c * per + i;
      // Blobs on a circle of radius 30.
      const double cx = 30 * std::cos(2 * M_PI * c / k);
      const double cy = 30 * std::sin(2 * M_PI * c / k);
      x(r, 0) = rng.Gaussian(cx, 0.5);
      x(r, 1) = rng.Gaussian(cy, 0.5);
      labels[r] = c;
    }
  }
  const Spectral spectral({.num_clusters = k});
  const ClusteringResult r = spectral.Cluster(x, 1);
  EXPECT_GT(metrics::ClusteringAccuracy(labels, r.assignment), 0.95)
      << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(KSweep, SpectralKSweepTest,
                         ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace mcirbm::clustering
