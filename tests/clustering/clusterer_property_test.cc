// Shared-contract property suite: every Clusterer implementation must
// satisfy the same invariants on the same inputs. Parameterized over all
// seven algorithms so a new clusterer added to the registry is covered by
// adding one line.
#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "clustering/affinity_propagation.h"
#include "clustering/agglomerative.h"
#include "clustering/clusterer.h"
#include "clustering/dbscan.h"
#include "clustering/density_peaks.h"
#include "clustering/gmm.h"
#include "clustering/kmeans.h"
#include "clustering/spectral.h"
#include "metrics/external.h"
#include "rng/rng.h"

namespace mcirbm::clustering {
namespace {

using linalg::Matrix;

// Factory so each test gets a fresh clusterer asking for k clusters.
using ClustererFactory = std::unique_ptr<Clusterer> (*)(int k);

std::unique_ptr<Clusterer> MakeKMeans(int k) {
  KMeansConfig config;
  config.k = k;
  return std::make_unique<KMeans>(config);
}
std::unique_ptr<Clusterer> MakeDensityPeaks(int k) {
  DensityPeaksConfig config;
  config.k = k;
  return std::make_unique<DensityPeaks>(config);
}
std::unique_ptr<Clusterer> MakeAffinityPropagation(int k) {
  AffinityPropagationConfig config;
  config.target_clusters = k;
  return std::make_unique<AffinityPropagation>(config);
}
std::unique_ptr<Clusterer> MakeAgglomerative(int k) {
  return std::make_unique<Agglomerative>(k, Linkage::kWard);
}
std::unique_ptr<Clusterer> MakeDbscan(int /*k*/) {
  // DBSCAN discovers its own k; included for the shared invariants.
  return std::make_unique<Dbscan>(Dbscan::Options{});
}
std::unique_ptr<Clusterer> MakeGmm(int k) {
  GaussianMixture::Options options;
  options.num_components = k;
  return std::make_unique<GaussianMixture>(options);
}
std::unique_ptr<Clusterer> MakeSpectral(int k) {
  Spectral::Options options;
  options.num_clusters = k;
  return std::make_unique<Spectral>(options);
}

struct Algo {
  const char* name;
  ClustererFactory make;
  bool fixed_k;  ///< honours the requested cluster count exactly
};

class ClustererContractTest : public ::testing::TestWithParam<Algo> {
 protected:
  // Three tight, well-separated blobs: every algorithm must solve this.
  static Matrix EasyBlobs(std::vector<int>* labels) {
    rng::Rng rng(77);
    const std::size_t per = 20;
    Matrix x(3 * per, 2);
    labels->assign(3 * per, 0);
    const double cx[3] = {0, 30, 0}, cy[3] = {0, 0, 30};
    for (int c = 0; c < 3; ++c) {
      for (std::size_t i = 0; i < per; ++i) {
        const std::size_t r = c * per + i;
        x(r, 0) = rng.Gaussian(cx[c], 0.5);
        x(r, 1) = rng.Gaussian(cy[c], 0.5);
        (*labels)[r] = c;
      }
    }
    return x;
  }
};

TEST_P(ClustererContractTest, AssignmentCoversAllRowsWithValidIds) {
  std::vector<int> labels;
  const Matrix x = EasyBlobs(&labels);
  const auto clusterer = GetParam().make(3);
  const ClusteringResult result = clusterer->Cluster(x, 3);
  ASSERT_EQ(result.assignment.size(), x.rows());
  for (int id : result.assignment) {
    EXPECT_GE(id, -1);
    EXPECT_LT(id, result.num_clusters);
  }
}

TEST_P(ClustererContractTest, CompactClusterIds) {
  std::vector<int> labels;
  const Matrix x = EasyBlobs(&labels);
  const auto clusterer = GetParam().make(3);
  const ClusteringResult result = clusterer->Cluster(x, 3);
  // Every id in [0, num_clusters) must actually occur.
  std::vector<bool> seen(result.num_clusters, false);
  for (int id : result.assignment) {
    if (id >= 0) seen[id] = true;
  }
  for (int c = 0; c < result.num_clusters; ++c) {
    EXPECT_TRUE(seen[c]) << "cluster id " << c << " unused";
  }
}

TEST_P(ClustererContractTest, DeterministicForFixedSeed) {
  std::vector<int> labels;
  const Matrix x = EasyBlobs(&labels);
  const auto clusterer = GetParam().make(3);
  EXPECT_EQ(clusterer->Cluster(x, 11).assignment,
            clusterer->Cluster(x, 11).assignment);
}

TEST_P(ClustererContractTest, SolvesWellSeparatedBlobs) {
  std::vector<int> labels;
  const Matrix x = EasyBlobs(&labels);
  const auto clusterer = GetParam().make(3);
  const ClusteringResult result = clusterer->Cluster(x, 5);
  // Score only assigned instances (DBSCAN may drop a stray point).
  std::vector<int> truth, pred;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (result.assignment[i] >= 0) {
      truth.push_back(labels[i]);
      pred.push_back(result.assignment[i]);
    }
  }
  // DBSCAN may shed a few low-density border points as noise.
  ASSERT_GT(truth.size(), labels.size() * 8 / 10);
  EXPECT_GE(metrics::ClusteringAccuracy(truth, pred), 0.95)
      << GetParam().name;
}

TEST_P(ClustererContractTest, HonoursRequestedK) {
  if (!GetParam().fixed_k) {
    GTEST_SKIP() << GetParam().name << " discovers its own k";
  }
  std::vector<int> labels;
  const Matrix x = EasyBlobs(&labels);
  for (const int k : {2, 3, 4}) {
    const auto clusterer = GetParam().make(k);
    EXPECT_EQ(clusterer->Cluster(x, 3).num_clusters, k)
        << GetParam().name << " k=" << k;
  }
}

TEST_P(ClustererContractTest, TranslationInvariantStructure) {
  std::vector<int> labels;
  const Matrix x = EasyBlobs(&labels);
  Matrix shifted = x;
  for (std::size_t i = 0; i < shifted.rows(); ++i) {
    shifted(i, 0) += 1000;
    shifted(i, 1) -= 500;
  }
  const auto clusterer = GetParam().make(3);
  const auto a = clusterer->Cluster(x, 9);
  const auto b = clusterer->Cluster(shifted, 9);
  // Same partition up to relabeling (Rand index 1).
  EXPECT_NEAR(metrics::RandIndex(a.assignment, b.assignment), 1.0, 1e-12)
      << GetParam().name;
}

TEST_P(ClustererContractTest, SingleInstanceInput) {
  Matrix x{{1.0, 2.0}};
  const auto clusterer = GetParam().make(1);
  const ClusteringResult result = clusterer->Cluster(x, 1);
  ASSERT_EQ(result.assignment.size(), 1u);
  EXPECT_LE(result.num_clusters, 1);
}

TEST_P(ClustererContractTest, NameIsNonEmpty) {
  EXPECT_FALSE(GetParam().make(2)->name().empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllClusterers, ClustererContractTest,
    ::testing::Values(Algo{"KMeans", &MakeKMeans, true},
                      Algo{"DensityPeaks", &MakeDensityPeaks, true},
                      Algo{"AffinityPropagation", &MakeAffinityPropagation,
                           false},
                      Algo{"AgglomerativeWard", &MakeAgglomerative, true},
                      Algo{"Dbscan", &MakeDbscan, false},
                      Algo{"Gmm", &MakeGmm, true},
                      Algo{"Spectral", &MakeSpectral, true}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace mcirbm::clustering
