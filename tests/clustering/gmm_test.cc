#include "clustering/gmm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "metrics/external.h"
#include "rng/rng.h"

namespace mcirbm::clustering {
namespace {

using linalg::Matrix;

Matrix TwoGaussians(std::size_t per, double sep, rng::Rng* rng,
                    std::vector<int>* labels) {
  Matrix x(2 * per, 2);
  labels->assign(2 * per, 0);
  for (std::size_t i = 0; i < per; ++i) {
    x(i, 0) = rng->Gaussian(0, 1);
    x(i, 1) = rng->Gaussian(0, 1);
    x(per + i, 0) = rng->Gaussian(sep, 1);
    x(per + i, 1) = rng->Gaussian(sep, 1);
    (*labels)[per + i] = 1;
  }
  return x;
}

TEST(GmmTest, SeparatedGaussiansRecovered) {
  rng::Rng rng(61);
  std::vector<int> labels;
  const Matrix x = TwoGaussians(60, 8, &rng, &labels);
  const GaussianMixture gmm({.num_components = 2});
  const ClusteringResult r = gmm.Cluster(x, 5);
  EXPECT_EQ(r.num_clusters, 2);
  EXPECT_GT(metrics::ClusteringAccuracy(labels, r.assignment), 0.98);
}

TEST(GmmTest, LogLikelihoodMonotonicallyImproves) {
  rng::Rng rng(67);
  std::vector<int> labels;
  const Matrix x = TwoGaussians(50, 4, &rng, &labels);
  const GaussianMixture gmm({.num_components = 2, .max_iterations = 50});
  const auto soft = gmm.FitSoft(x, 3);
  const auto& trace = soft.log_likelihood_trace;
  ASSERT_GE(trace.size(), 2u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i], trace[i - 1] - 1e-9)
        << "EM log-likelihood decreased at iteration " << i;
  }
}

TEST(GmmTest, ResponsibilitiesRowsSumToOne) {
  rng::Rng rng(71);
  std::vector<int> labels;
  const Matrix x = TwoGaussians(30, 5, &rng, &labels);
  const GaussianMixture gmm({.num_components = 3});
  const auto soft = gmm.FitSoft(x, 11);
  for (std::size_t i = 0; i < soft.responsibilities.rows(); ++i) {
    double sum = 0;
    for (std::size_t c = 0; c < soft.responsibilities.cols(); ++c) {
      const double v = soft.responsibilities(i, c);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(GmmTest, DeterministicGivenSeed) {
  rng::Rng rng(73);
  std::vector<int> labels;
  const Matrix x = TwoGaussians(40, 6, &rng, &labels);
  const GaussianMixture gmm({.num_components = 2});
  EXPECT_EQ(gmm.Cluster(x, 7).assignment, gmm.Cluster(x, 7).assignment);
}

TEST(GmmTest, SingleComponentCoversAll) {
  rng::Rng rng(79);
  std::vector<int> labels;
  const Matrix x = TwoGaussians(20, 3, &rng, &labels);
  const GaussianMixture gmm({.num_components = 1});
  const ClusteringResult r = gmm.Cluster(x, 0);
  EXPECT_EQ(r.num_clusters, 1);
  for (int id : r.assignment) EXPECT_EQ(id, 0);
}

TEST(GmmTest, AnisotropicClustersBeatDistanceOnlyIntuition) {
  // Two clusters sharing an x range but differing in y variance; the
  // diagonal GMM separates them via variance, which a pure distance
  // metric often mangles.
  rng::Rng rng(83);
  Matrix x(100, 2);
  std::vector<int> labels(100, 0);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.Gaussian(0, 2.0);
    x(i, 1) = rng.Gaussian(0, 0.1);
    x(50 + i, 0) = rng.Gaussian(0, 2.0);
    x(50 + i, 1) = rng.Gaussian(6, 0.1);
    labels[50 + i] = 1;
  }
  const GaussianMixture gmm({.num_components = 2});
  const ClusteringResult r = gmm.Cluster(x, 13);
  EXPECT_GT(metrics::ClusteringAccuracy(labels, r.assignment), 0.95);
}

TEST(GmmTest, VarianceFloorSurvivesDuplicatePoints) {
  // All points identical: without the floor the variance collapses to 0
  // and the densities blow up.
  Matrix x(10, 2, 1.0);
  const GaussianMixture gmm({.num_components = 2});
  const ClusteringResult r = gmm.Cluster(x, 17);
  EXPECT_GE(r.num_clusters, 1);
  for (int id : r.assignment) EXPECT_GE(id, 0);
  for (double ll : gmm.FitSoft(x, 17).log_likelihood_trace) {
    EXPECT_TRUE(std::isfinite(ll));
  }
}

TEST(GmmTest, OscillatingFitDoesNotConvergeOnLikelihoodDrop) {
  // Near-duplicate blobs drive the variances onto the floor, where the
  // log-likelihood oscillates at rounding scale. The old convergence test
  // (`ll - previous_ll < tolerance`) was satisfied by any *decrease*, so
  // the fit stopped exactly at the first drop and the trace ended on a
  // negative delta. Convergence now requires a small non-negative
  // improvement; drops stay visible in the trace and EM keeps going.
  rng::Rng rng(24);
  const std::size_t per = 30;
  Matrix x(2 * per, 2);
  for (std::size_t i = 0; i < per; ++i) {
    x(i, 0) = rng.Gaussian(0, 1e-4);
    x(i, 1) = rng.Gaussian(0, 1e-4);
    x(per + i, 0) = rng.Gaussian(100, 1e-4);
    x(per + i, 1) = rng.Gaussian(100, 1e-4);
  }
  const GaussianMixture gmm({.num_components = 3, .max_iterations = 100});
  const auto soft = gmm.FitSoft(x, 169);
  const auto& trace = soft.log_likelihood_trace;
  ASSERT_GE(trace.size(), 3u);
  // The crafted fit really does oscillate: at least one drop is surfaced
  // in the trace...
  bool any_decrease = false;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i] < trace[i - 1]) any_decrease = true;
  }
  EXPECT_TRUE(any_decrease) << "scenario no longer oscillates";
  // ...and the fit converged past it, on a genuine non-negative
  // improvement (the old code stopped *at* the drop instead).
  ASSERT_TRUE(soft.hard.converged);
  const double final_delta = trace.back() - trace[trace.size() - 2];
  EXPECT_GE(final_delta, 0.0);
  EXPECT_LT(final_delta, gmm.options().tolerance);
}

TEST(GmmTest, MixingWeightsSumToOne) {
  // The M-step renormalizes the mixing weights, so Σ weights == 1 even
  // when a component starves and keeps its stale weight. Exercised on an
  // underflow-heavy fit (floored variances, far-separated duplicates).
  rng::Rng rng(24);
  const std::size_t per = 30;
  Matrix x(2 * per, 2);
  for (std::size_t i = 0; i < per; ++i) {
    x(i, 0) = rng.Gaussian(0, 1e-4);
    x(i, 1) = rng.Gaussian(0, 1e-4);
    x(per + i, 0) = rng.Gaussian(100, 1e-4);
    x(per + i, 1) = rng.Gaussian(100, 1e-4);
  }
  for (const int k : {2, 3, 4}) {
    const GaussianMixture gmm({.num_components = k});
    const auto soft = gmm.FitSoft(x, 19 + k);
    ASSERT_EQ(soft.weights.size(), static_cast<std::size_t>(k));
    double sum = 0;
    for (const double w : soft.weights) {
      EXPECT_GE(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "weights drifted at k=" << k;
  }
}

TEST(GmmTest, ConvergesWellBeforeIterationCap) {
  rng::Rng rng(89);
  std::vector<int> labels;
  const Matrix x = TwoGaussians(50, 10, &rng, &labels);
  const GaussianMixture gmm(
      {.num_components = 2, .max_iterations = 200, .tolerance = 1e-6});
  const auto soft = gmm.FitSoft(x, 19);
  EXPECT_TRUE(soft.hard.converged);
  EXPECT_LT(soft.hard.iterations, 100);
}

}  // namespace
}  // namespace mcirbm::clustering
