// net::LineServer — the TCP transport end to end: per-op loopback round
// trips against a real Router, pipelined out-of-order completion with
// id matching, strict FIFO for untagged requests, protocol-error and
// half-close handling, duplicate-id rejection, drain under load, and
// the read-only TextEndpoint. Runs under ThreadSanitizer in CI.
#include "net/line_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/api.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "net/client.h"
#include "net/text_endpoint.h"
#include "serve/executor.h"
#include "serve/router.h"
#include "util/string_util.h"

namespace mcirbm::net {
namespace {

data::Dataset TestDataset() {
  data::GaussianMixtureSpec spec;
  spec.name = "net";
  spec.num_classes = 2;
  spec.num_instances = 32;
  spec.num_features = 6;
  spec.separation = 6.0;
  return data::GenerateGaussianMixture(spec, 21);
}

// Pulls `key=value`'s value out of a response line ("" when absent).
std::string Token(const std::string& line, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = line.find(" " + needle);
  if (pos == std::string::npos) {
    if (line.rfind(needle, 0) != 0) return "";
    pos = 0;
  } else {
    pos += 1;
  }
  const std::size_t begin = pos + needle.size();
  const std::size_t end = line.find(' ', begin);
  return line.substr(begin, end == std::string::npos ? end : end - begin);
}

class LineServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = TestDataset();
    data_path_ = ::testing::TempDir() + "/net_data.csv";
    model_path_ = ::testing::TempDir() + "/net_model.mcirbm";
    out_path_ = ::testing::TempDir() + "/net_features.csv";
    ASSERT_TRUE(data::SaveDatasetCsv(ds_, data_path_).ok());
    core::PipelineConfig config;
    config.model = core::ModelKind::kGrbm;
    config.rbm.num_hidden = 5;
    config.rbm.epochs = 2;
    config.rbm.batch_size = 10;
    auto model = api::Model::Train(ds_.x, config, 33);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    ASSERT_TRUE(model.value().Save(model_path_).ok());
    // The reference features go through the same CSV round trip the
    // served transform reads, so the comparison sees identical inputs.
    auto loaded = data::LoadDatasetCsv(data_path_, data_path_);
    ASSERT_TRUE(loaded.ok());
    reference_ = model.value().Transform(loaded.value().x).value();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Drain();
    if (router_ != nullptr) router_->Shutdown();
    std::remove(data_path_.c_str());
    std::remove(model_path_.c_str());
    std::remove(out_path_.c_str());
  }

  void StartServer(int handler_threads = 2) {
    serve::RouterConfig config;
    config.replicas = 2;
    router_ = std::make_unique<serve::Router>(config);
    executor_ = std::make_unique<serve::RequestExecutor>(router_.get());
    LineServerConfig net_config;
    net_config.handler_threads = handler_threads;
    server_ = std::make_unique<LineServer>(net_config, executor_.get());
    executor_->AddStatsRegistry(&server_->registry());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_GT(server_->port(), 0);
  }

  Client ConnectClient() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

  // Reads one complete response: the ok/error line, plus the metric
  // lines an op=stats ok line announces via its metrics=<n> count.
  // Returns the first line; the metric payload goes to `body` when
  // given.
  Status ReadResponse(Client* client, std::string* first,
                      std::string* body = nullptr) {
    const Status status = client->ReadLine(first);
    if (!status.ok()) return status;
    if (body != nullptr) body->clear();
    const std::string metrics = Token(*first, "metrics");
    if (metrics.empty()) return Status::Ok();
    const int count = std::stoi(metrics);
    std::string line;
    for (int i = 0; i < count; ++i) {
      const Status read = client->ReadLine(&line);
      if (!read.ok()) return read;
      if (body != nullptr) (*body) += line + "\n";
    }
    return Status::Ok();
  }

  std::string TransformRequest(const std::string& extra = "") {
    return "op=transform model=" + model_path_ + " data=" + data_path_ +
           " chunk=4" + extra;
  }

  std::string EvaluateRequest(const std::string& extra = "") {
    return "op=evaluate model=" + model_path_ + " data=" + data_path_ +
           extra;
  }

  data::Dataset ds_;
  linalg::Matrix reference_;
  std::string data_path_, model_path_, out_path_;
  std::unique_ptr<serve::Router> router_;
  std::unique_ptr<serve::RequestExecutor> executor_;
  std::unique_ptr<LineServer> server_;
};

TEST_F(LineServerTest, TransformRoundTripMatchesDirectTransform) {
  StartServer();
  Client client = ConnectClient();
  ASSERT_TRUE(client.SendLine(TransformRequest(" out=" + out_path_)).ok());
  std::string response;
  ASSERT_TRUE(ReadResponse(&client, &response).ok());
  EXPECT_EQ(response.rfind("ok op=transform", 0), 0u) << response;
  EXPECT_EQ(Token(response, "rows"), std::to_string(ds_.x.rows()));
  EXPECT_EQ(Token(response, "sum"), FormatDouble(reference_.Sum(), 6));
  // The out= CSV holds the same features a direct Model::Transform
  // produces (modulo the CSV text round trip).
  auto features = data::LoadDatasetCsv(out_path_, out_path_);
  ASSERT_TRUE(features.ok());
  EXPECT_TRUE(features.value().x.AllClose(reference_, 1e-9));
}

TEST_F(LineServerTest, EvaluateRoundTripMatchesDirectEvaluate) {
  StartServer();
  auto model = api::Model::Load(model_path_);
  ASSERT_TRUE(model.ok());
  auto loaded = data::LoadDatasetCsv(data_path_, data_path_);
  ASSERT_TRUE(loaded.ok());
  auto direct = model.value().Evaluate(loaded.value().x,
                                       loaded.value().labels);
  ASSERT_TRUE(direct.ok());

  Client client = ConnectClient();
  ASSERT_TRUE(client.SendLine(EvaluateRequest(" id=e1")).ok());
  std::string response;
  ASSERT_TRUE(ReadResponse(&client, &response).ok());
  EXPECT_EQ(response.rfind("ok id=e1 op=evaluate", 0), 0u) << response;
  EXPECT_EQ(Token(response, "clusters"),
            std::to_string(direct.value().clusters_found));
  EXPECT_EQ(Token(response, "accuracy"),
            FormatDouble(direct.value().metrics.accuracy, 4));
  EXPECT_EQ(Token(response, "nmi"),
            FormatDouble(direct.value().metrics.nmi, 4));
}

TEST_F(LineServerTest, StatsRoundTripCarriesNetAndServeMetrics) {
  StartServer();
  Client client = ConnectClient();
  ASSERT_TRUE(client.SendLine("op=stats id=s1").ok());
  std::string response, body;
  ASSERT_TRUE(ReadResponse(&client, &response, &body).ok());
  EXPECT_EQ(response.rfind("ok id=s1 op=stats metrics=", 0), 0u)
      << response;
  // The transport's registry is folded into the same surface as the
  // router's serving metrics.
  EXPECT_NE(body.find("net_connections_open 1"), std::string::npos) << body;
  EXPECT_NE(body.find("net_requests_total 1"), std::string::npos);
  EXPECT_NE(body.find("net_request_micros"), std::string::npos);
  EXPECT_NE(body.find("serve_replicas 2"), std::string::npos);
}

TEST_F(LineServerTest, PipelinedResponsesCompleteOutOfOrder) {
  StartServer(/*handler_threads=*/2);
  Client client = ConnectClient();
  // A slow request tagged first, a cheap one tagged second: with two
  // handlers the cheap response overtakes — completion order, not
  // submission order.
  ASSERT_TRUE(client.SendLine(EvaluateRequest(" id=slow")).ok());
  ASSERT_TRUE(client.SendLine("op=stats id=fast").ok());
  std::string first, second;
  ASSERT_TRUE(ReadResponse(&client, &first).ok());
  ASSERT_TRUE(ReadResponse(&client, &second).ok());
  EXPECT_EQ(Token(first, "id"), "fast") << first;
  EXPECT_EQ(Token(second, "id"), "slow") << second;
}

TEST_F(LineServerTest, UntaggedRequestsAnswerInStrictFifoOrder) {
  StartServer();
  Client client = ConnectClient();
  ASSERT_TRUE(client.SendLine(EvaluateRequest()).ok());
  ASSERT_TRUE(client.SendLine("op=stats").ok());
  ASSERT_TRUE(client.SendLine(TransformRequest()).ok());
  std::string response;
  ASSERT_TRUE(ReadResponse(&client, &response).ok());
  EXPECT_EQ(Token(response, "op"), "evaluate");
  ASSERT_TRUE(ReadResponse(&client, &response).ok());
  EXPECT_EQ(Token(response, "op"), "stats");
  ASSERT_TRUE(ReadResponse(&client, &response).ok());
  EXPECT_EQ(Token(response, "op"), "transform");
}

TEST_F(LineServerTest, MalformedLineAnswersErrorAndKeepsConnection) {
  StartServer();
  Client client = ConnectClient();
  ASSERT_TRUE(client.SendLine("op=bogus nonsense").ok());
  std::string response;
  ASSERT_TRUE(ReadResponse(&client, &response).ok());
  EXPECT_EQ(response.rfind("error ", 0), 0u) << response;
  // The connection survives the protocol error.
  ASSERT_TRUE(client.SendLine("op=stats").ok());
  ASSERT_TRUE(ReadResponse(&client, &response).ok());
  EXPECT_EQ(response.rfind("ok op=stats", 0), 0u) << response;
  const obs::MetricsSnapshot snapshot = server_->metrics_snapshot();
  EXPECT_EQ(snapshot.counters.at({"net_protocol_errors_total", ""}), 1u);
  EXPECT_EQ(snapshot.counters.at({"net_requests_total", ""}), 2u);
}

TEST_F(LineServerTest, DuplicateInFlightIdRejectedThenReusable) {
  // One handler, with several expensive evaluates queued ahead of id=b:
  // the reader burns microseconds per line while the handler owes tens
  // of milliseconds of clustering work, so id=b is still in flight when
  // the duplicate line arrives — even on a loaded single-core machine.
  StartServer(/*handler_threads=*/1);
  Client client = ConnectClient();
  constexpr int kPadding = 8;
  for (int i = 0; i < kPadding; ++i) {
    ASSERT_TRUE(
        client.SendLine(EvaluateRequest(" id=q" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(client.SendLine("op=stats id=b").ok());
  ASSERT_TRUE(client.SendLine("op=stats id=b").ok());
  // The rejection is written inline by the reader, ahead of every queued
  // response.
  std::string response;
  ASSERT_TRUE(ReadResponse(&client, &response).ok());
  EXPECT_EQ(response.rfind("error id=b", 0), 0u) << response;
  EXPECT_NE(response.find("duplicate id"), std::string::npos) << response;
  for (int i = 0; i < kPadding; ++i) {
    ASSERT_TRUE(ReadResponse(&client, &response).ok());
    EXPECT_EQ(Token(response, "id"), "q" + std::to_string(i));
  }
  ASSERT_TRUE(ReadResponse(&client, &response).ok());
  EXPECT_EQ(Token(response, "id"), "b");
  // Once answered, the id is free again.
  ASSERT_TRUE(client.SendLine("op=stats id=b").ok());
  ASSERT_TRUE(ReadResponse(&client, &response).ok());
  EXPECT_EQ(response.rfind("ok id=b op=stats", 0), 0u) << response;
}

TEST_F(LineServerTest, HalfClosedConnectionDrainsEveryResponse) {
  StartServer();
  Client client = ConnectClient();
  constexpr int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.SendLine("op=stats id=r" + std::to_string(i)).ok());
  }
  client.ShutdownWrite();  // nc -N style: send everything, read to EOF
  int received = 0;
  std::string response;
  while (ReadResponse(&client, &response).ok()) {
    EXPECT_EQ(response.rfind("ok id=r", 0), 0u) << response;
    ++received;
  }
  EXPECT_EQ(received, kRequests);
}

TEST_F(LineServerTest, DrainUnderLoadResolvesEveryAdmittedRequestOnce) {
  StartServer(/*handler_threads=*/2);
  constexpr int kClients = 3;
  constexpr int kRequestsPerClient = 30;
  std::atomic<int> ready{0};
  std::atomic<int> received_total{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client = ConnectClient();
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const Status sent = client.SendLine(
            "op=stats id=c" + std::to_string(c) + "-" + std::to_string(i));
        if (!sent.ok()) break;  // server already shut this side down
      }
      // Hold the drain until every client has at least one response in
      // hand, so the shutdown races genuinely in-flight traffic.
      std::string response;
      if (ReadResponse(&client, &response).ok()) {
        received_total.fetch_add(1);
      }
      ready.fetch_add(1);
      while (ReadResponse(&client, &response).ok()) {
        received_total.fetch_add(1);
      }
    });
  }
  while (ready.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server_->Drain();
  for (std::thread& t : clients) t.join();

  // Every request the server read was answered exactly once, every
  // response reached a client, and every connection is closed.
  const obs::MetricsSnapshot snapshot = server_->metrics_snapshot();
  const std::uint64_t requests =
      snapshot.counters.at({"net_requests_total", ""});
  const std::uint64_t responses =
      snapshot.counters.at({"net_responses_total", ""});
  EXPECT_EQ(requests, responses);
  EXPECT_EQ(static_cast<std::uint64_t>(received_total.load()), responses);
  EXPECT_GE(responses, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(snapshot.gauges.at({"net_connections_open", ""}), 0.0);
  EXPECT_EQ(server_->ok_responses() + server_->error_responses(),
            responses);
}

TEST_F(LineServerTest, ResponseHookReportsRunningTotals) {
  serve::RouterConfig config;
  router_ = std::make_unique<serve::Router>(config);
  executor_ = std::make_unique<serve::RequestExecutor>(router_.get());
  LineServerConfig net_config;
  server_ = std::make_unique<LineServer>(net_config, executor_.get());
  std::atomic<std::uint64_t> last_total{0};
  server_->set_response_hook(
      [&last_total](std::uint64_t total) { last_total.store(total); });
  ASSERT_TRUE(server_->Start().ok());
  Client client = ConnectClient();
  std::string response;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.SendLine("op=stats").ok());
    ASSERT_TRUE(ReadResponse(&client, &response).ok());
  }
  // The hook runs on the serving thread after the response is flushed,
  // so it can trail the client's read by a beat.
  for (int spin = 0; spin < 2000 && last_total.load() < 3u; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(last_total.load(), 3u);
}

TEST_F(LineServerTest, TextEndpointServesSnapshotToEveryConnection) {
  StartServer();
  TextEndpoint endpoint("127.0.0.1", 0,
                        [this] { return executor_->RenderStatsText(); });
  ASSERT_TRUE(endpoint.Start().ok());
  ASSERT_GT(endpoint.port(), 0);
  for (int probe = 0; probe < 2; ++probe) {
    auto connected = Client::Connect("127.0.0.1", endpoint.port());
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    Client client = std::move(connected).value();
    std::ostringstream body;
    std::string line;
    while (client.ReadLine(&line).ok()) body << line << "\n";
    EXPECT_NE(body.str().find("serve_replicas 2"), std::string::npos)
        << "probe " << probe << ":\n"
        << body.str();
    EXPECT_NE(body.str().find("net_connections_open"), std::string::npos);
  }
  endpoint.Stop();
}

}  // namespace
}  // namespace mcirbm::net
