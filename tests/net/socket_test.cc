// net::Listener / net::Connection / net::Client — the raw socket layer:
// bind/accept/connect plumbing, buffered line framing, CR stripping,
// oversized-line rejection, and half-close EOF semantics.
#include "net/socket.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "net/client.h"

namespace mcirbm::net {
namespace {

// Bind an ephemeral listener and connect one client to it, returning
// both ends ready for line I/O.
struct LoopbackPair {
  Listener listener;
  Connection server;
  Client client;
};

LoopbackPair MakeLoopbackPair() {
  LoopbackPair pair;
  auto listener = Listener::Bind("127.0.0.1", 0);
  EXPECT_TRUE(listener.ok()) << listener.status().ToString();
  pair.listener = std::move(listener).value();
  auto client = Client::Connect("127.0.0.1", pair.listener.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  pair.client = std::move(client).value();
  auto accepted = pair.listener.Accept(2000);
  EXPECT_TRUE(accepted.ok()) << accepted.status().ToString();
  pair.server = Connection(std::move(accepted).value());
  return pair;
}

TEST(ListenerTest, BindEphemeralReportsConcretePort) {
  auto listener = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  EXPECT_GT(listener.value().port(), 0);
  EXPECT_LE(listener.value().port(), 65535);
}

TEST(ListenerTest, AcceptTimesOutUnavailableWithoutClients) {
  auto bound = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(bound.ok());
  Listener listener = std::move(bound).value();
  auto accepted = listener.Accept(10);
  ASSERT_FALSE(accepted.ok());
  EXPECT_EQ(accepted.status().code(), StatusCode::kUnavailable);
}

TEST(ClientTest, ConnectToClosedPortFails) {
  // Bind then immediately close: the port is known-unoccupied, so the
  // connect is refused rather than hanging.
  auto bound = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(bound.ok());
  Listener listener = std::move(bound).value();
  const int port = listener.port();
  listener.Close();
  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kIoError);
}

TEST(ClientTest, RejectsEmbeddedNewline) {
  auto pair = MakeLoopbackPair();
  const Status sent = pair.client.SendLine("two\nlines");
  ASSERT_FALSE(sent.ok());
  EXPECT_EQ(sent.code(), StatusCode::kInvalidArgument);
}

TEST(ConnectionTest, RoundTripsLinesAndStripsCarriageReturn) {
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.client.SendLine("hello world").ok());
  ASSERT_TRUE(pair.client.SendLine("crlf\r").ok());  // wire: "crlf\r\n"
  std::string line;
  ASSERT_TRUE(pair.server.ReadLine(&line).ok());
  EXPECT_EQ(line, "hello world");
  ASSERT_TRUE(pair.server.ReadLine(&line).ok());
  EXPECT_EQ(line, "crlf");
  // And the other direction, through the client's reader.
  ASSERT_TRUE(pair.server.WriteAll("response\n").ok());
  ASSERT_TRUE(pair.client.ReadLine(&line).ok());
  EXPECT_EQ(line, "response");
}

TEST(ConnectionTest, OversizedLineIsInvalidArgumentAndResyncs) {
  auto pair = MakeLoopbackPair();
  pair.server.max_line_bytes = 16;
  ASSERT_TRUE(pair.client.SendLine(std::string(64, 'x')).ok());
  ASSERT_TRUE(pair.client.SendLine("short").ok());
  std::string line;
  const Status read = pair.server.ReadLine(&line);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), StatusCode::kInvalidArgument);
  // The stream resynchronizes on the next line.
  ASSERT_TRUE(pair.server.ReadLine(&line).ok());
  EXPECT_EQ(line, "short");
}

TEST(ConnectionTest, HalfCloseDeliversBufferedLinesThenEof) {
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.client.SendLine("last request").ok());
  pair.client.ShutdownWrite();
  std::string line;
  ASSERT_TRUE(pair.server.ReadLine(&line).ok());
  EXPECT_EQ(line, "last request");
  const Status eof = pair.server.ReadLine(&line);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.code(), StatusCode::kUnavailable);
  // The server can still answer after the client's half-close.
  ASSERT_TRUE(pair.server.WriteAll("goodbye\n").ok());
  ASSERT_TRUE(pair.client.ReadLine(&line).ok());
  EXPECT_EQ(line, "goodbye");
}

TEST(ConnectionTest, UnterminatedTrailingFragmentIsDroppedAtEof) {
  // A peer that dies mid-line never completed that request; executing a
  // truncated line (e.g. a clipped out= path) would be worse than
  // dropping it.
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.server.WriteAll("complete\nfragment without end").ok());
  pair.server.ShutdownWrite();
  std::string line;
  ASSERT_TRUE(pair.client.ReadLine(&line).ok());
  EXPECT_EQ(line, "complete");
  const Status eof = pair.client.ReadLine(&line);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace mcirbm::net
