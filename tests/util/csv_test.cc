#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace mcirbm {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/csv_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(CsvTest, RoundTripWithHeader) {
  ASSERT_TRUE(WriteCsv(path_, {"a", "b"}, {{1, 2}, {3, 4}}).ok());
  auto table = ReadCsv(path_, /*has_header=*/true);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table.value().rows.size(), 2u);
  EXPECT_DOUBLE_EQ(table.value().rows[1][0], 3);
}

TEST_F(CsvTest, RoundTripWithoutHeader) {
  ASSERT_TRUE(WriteCsv(path_, {}, {{1.5, -2.5}}).ok());
  auto table = ReadCsv(path_, /*has_header=*/false);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table.value().header.empty());
  ASSERT_EQ(table.value().rows.size(), 1u);
  EXPECT_DOUBLE_EQ(table.value().rows[0][1], -2.5);
}

TEST_F(CsvTest, MissingFileIsIoError) {
  auto table = ReadCsv("/nonexistent/nope.csv", true);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, RaggedRowIsParseError) {
  WriteFile("1,2\n3\n");
  auto table = ReadCsv(path_, false);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kParseError);
}

TEST_F(CsvTest, NonNumericCellIsParseError) {
  WriteFile("1,abc\n");
  auto table = ReadCsv(path_, false);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kParseError);
}

TEST_F(CsvTest, SkipsBlankLines) {
  WriteFile("1,2\n\n3,4\n");
  auto table = ReadCsv(path_, false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().rows.size(), 2u);
}

TEST_F(CsvTest, HandlesWindowsLineEndings) {
  WriteFile("a,b\r\n1,2\r\n");
  auto table = ReadCsv(path_, true);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value().header[1], "b");
  EXPECT_DOUBLE_EQ(table.value().rows[0][1], 2);
}

TEST_F(CsvTest, ScientificNotationCells) {
  WriteFile("1e-3,2.5E2\n");
  auto table = ReadCsv(path_, false);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(table.value().rows[0][0], 1e-3);
  EXPECT_DOUBLE_EQ(table.value().rows[0][1], 250);
}

}  // namespace
}  // namespace mcirbm
