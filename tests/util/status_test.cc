#include "util/status.h"

#include <gtest/gtest.h>

namespace mcirbm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("disk gone");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk gone");
  EXPECT_EQ(s.ToString(), "IO_ERROR: disk gone");
}

TEST(StatusTest, AllFactoriesSetCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("").code(), StatusCode::kUnavailable);
}

TEST(StatusCodeNameTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "PARSE_ERROR");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

}  // namespace
}  // namespace mcirbm
