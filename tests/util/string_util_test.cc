#include "util/string_util.h"

#include <gtest/gtest.h>

namespace mcirbm {
namespace {

TEST(SplitTest, BasicCommaSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitTest, EmptyStringYieldsOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitTest, TrailingDelimiterYieldsTrailingEmpty) {
  const auto parts = Split("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(JoinTest, RoundTripsSplit) {
  const std::string s = "x,y,z";
  EXPECT_EQ(Join(Split(s, ','), ","), s);
}

TEST(JoinTest, EmptyVector) { EXPECT_EQ(Join({}, ","), ""); }

TEST(JoinTest, SingleElement) { EXPECT_EQ(Join({"a"}, ","), "a"); }

TEST(TrimTest, StripsBothEnds) { EXPECT_EQ(Trim("  hi \t\n"), "hi"); }

TEST(TrimTest, AllWhitespaceBecomesEmpty) { EXPECT_EQ(Trim(" \t "), ""); }

TEST(TrimTest, NoWhitespaceUnchanged) { EXPECT_EQ(Trim("abc"), "abc"); }

TEST(StartsWithTest, Matches) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_FALSE(StartsWith("hello", "hello world"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(FormatDoubleTest, RoundsToDigits) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(0.9999, 2), "1.00");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(PadTest, PadLeftAddsSpaces) { EXPECT_EQ(PadLeft("ab", 4), "  ab"); }

TEST(PadTest, PadRightAddsSpaces) { EXPECT_EQ(PadRight("ab", 4), "ab  "); }

TEST(PadTest, LongerStringUnchanged) {
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");
}

TEST(ParseDoubleTest, ParsesPlainAndScientific) {
  double v = 0;
  ASSERT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  ASSERT_TRUE(ParseDouble("-1e-3", &v));
  EXPECT_DOUBLE_EQ(v, -1e-3);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("3.25x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("  ", &v));
}

TEST(ParseDoubleTest, AcceptsSurroundingWhitespace) {
  double v = 0;
  ASSERT_TRUE(ParseDouble("  2.5 ", &v));
  EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(ParseIntTest, ParsesAndRejects) {
  int v = 0;
  ASSERT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  ASSERT_TRUE(ParseInt("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(ParseInt("4.5", &v));
  EXPECT_FALSE(ParseInt("", &v));
}

}  // namespace
}  // namespace mcirbm
