// Runtime coverage for the annotated mutex wrappers (util/mutex.h).
// The compile-time half — proving -Wthread-safety rejects an unguarded
// access — is cmake/ThreadSafetyCheck.cmake, run at configure time by
// the thread-safety CI job.
#include "util/mutex.h"

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mcirbm {
namespace {

TEST(MutexTest, LockUnlockTryLock) {
  Mutex mu;
  mu.Lock();
  // Held here: another thread must fail TryLock.
  bool other_acquired = true;
  std::thread prober([&] { other_acquired = mu.TryLock(); });
  prober.join();
  EXPECT_FALSE(other_acquired);
  mu.Unlock();

  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockExcludesConcurrentWriters) {
  Mutex mu;
  std::int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(MutexTest, MutexLockEarlyUnlockRelock) {
  // The flusher-loop pattern: drop the lock around slow work, reclaim
  // it, and let the destructor release only the final hold.
  Mutex mu;
  int guarded = 0;
  {
    MutexLock lock(mu);
    guarded = 1;
    lock.Unlock();
    // Unlocked here: another thread can take and release the mutex.
    std::thread other([&] {
      MutexLock inner(mu);
      guarded = 2;
    });
    other.join();
    lock.Lock();
    EXPECT_EQ(guarded, 2);
    guarded = 3;
  }
  // Destructor released it; a fresh TryLock must succeed.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
  EXPECT_EQ(guarded, 3);
}

TEST(CondVarTest, WaitNotifyProducerConsumer) {
  Mutex mu;
  CondVar cv;
  std::deque<int> queue;
  bool done = false;
  std::int64_t consumed_sum = 0;
  constexpr int kItems = 1000;

  std::thread consumer([&] {
    std::int64_t sum = 0;
    for (;;) {
      int item = -1;
      {
        MutexLock lock(mu);
        while (queue.empty() && !done) cv.Wait(mu);
        if (queue.empty()) break;  // done && drained
        item = queue.front();
        queue.pop_front();
      }
      sum += item;
    }
    MutexLock lock(mu);
    consumed_sum = sum;
  });

  for (int i = 1; i <= kItems; ++i) {
    {
      MutexLock lock(mu);
      queue.push_back(i);
    }
    cv.NotifyOne();
  }
  {
    MutexLock lock(mu);
    done = true;
  }
  cv.NotifyAll();
  consumer.join();
  EXPECT_EQ(consumed_sum,
            static_cast<std::int64_t>(kItems) * (kItems + 1) / 2);
}

TEST(CondVarTest, WaitForMicrosTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  // Nobody ever notifies: every wait must come back, and (tolerating
  // spurious wakeups) it must report timeout within a few rounds.
  bool saw_timeout = false;
  for (int attempt = 0; attempt < 50 && !saw_timeout; ++attempt) {
    saw_timeout = !cv.WaitForMicros(mu, 2000);
  }
  EXPECT_TRUE(saw_timeout);
  // Negative timeouts clamp to zero and return immediately.
  EXPECT_FALSE(cv.WaitForMicros(mu, -5));
}

TEST(CondVarTest, WaitForMicrosSeesNotification) {
  Mutex mu;
  CondVar cv;
  bool flag = false;
  std::thread notifier([&] {
    MutexLock lock(mu);
    flag = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    // Generous deadline per round; the loop re-arms on spurious wakeups
    // and on the (unlikely) timeout race.
    while (!flag) cv.WaitForMicros(mu, 200000);
    EXPECT_TRUE(flag);
  }
  notifier.join();
}

}  // namespace
}  // namespace mcirbm
