#include "obs/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/registry.h"

namespace mcirbm::obs {
namespace {

// One bucket spans a factor of 2^(1/4), so a quantile estimated by linear
// interpolation inside a bucket is at most one bucket ratio away from the
// exact order statistic.
constexpr double kBucketRatio = 1.18920711500272106;  // 2^(1/4)

double ExactQuantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  // Nearest-rank, matching Histogram::Snapshot::Quantile's target rank.
  const std::size_t rank = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(q * static_cast<double>(values.size()))));
  return values[rank - 1];
}

TEST(HistogramTest, BucketLayout) {
  // Bucket 0 catches [0, 1) plus anything non-positive.
  EXPECT_EQ(Histogram::BucketFor(0.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(-5.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(0.999), 0u);
  // Bucket 1 starts at exactly 1.
  EXPECT_EQ(Histogram::BucketFor(1.0), 1u);
  // Values far beyond the covered range clamp to the last bucket.
  EXPECT_EQ(Histogram::BucketFor(1e30), Histogram::kBuckets - 1);
  // Bucket edges are monotone.
  for (std::size_t i = 0; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_LT(Histogram::BucketUpper(i), Histogram::BucketUpper(i + 1));
  }
}

TEST(HistogramTest, EmptySnapshot) {
  Histogram h;
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
  EXPECT_EQ(snap.Quantile(0.0), 0.0);
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Quantile(1.0), 0.0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Record(100.0);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 100.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 100.0);
  // Every quantile of a single sample lands in that sample's bucket, so
  // the estimate is within one bucket ratio of the sample itself.
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double est = snap.Quantile(q);
    EXPECT_GE(est, 100.0 / kBucketRatio) << "q=" << q;
    EXPECT_LE(est, 100.0 * kBucketRatio) << "q=" << q;
  }
}

TEST(HistogramTest, QuantileAccuracyVsExactSort) {
  // Log-uniform samples over [1us, ~100ms] — the latency range the serve
  // layer actually sees — exercising many buckets at once.
  std::mt19937_64 rng(20260807);
  std::uniform_real_distribution<double> log_value(0.0, std::log(1e5));
  std::vector<double> values;
  values.reserve(20000);
  Histogram h;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(log_value(rng));
    values.push_back(v);
    h.Record(v);
  }
  const Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, values.size());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = ExactQuantile(values, q);
    const double est = snap.Quantile(q);
    // One bucket of slack on either side: the estimate interpolates
    // inside the bucket holding the exact order statistic.
    EXPECT_GE(est, exact / kBucketRatio) << "q=" << q;
    EXPECT_LE(est, exact * kBucketRatio) << "q=" << q;
  }
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  Histogram a;
  Histogram b;
  Histogram c;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> value(0.5, 5000.0);
  for (int i = 0; i < 300; ++i) a.Record(value(rng));
  for (int i = 0; i < 200; ++i) b.Record(value(rng));
  for (int i = 0; i < 100; ++i) c.Record(value(rng));
  const Histogram::Snapshot sa = a.snapshot();
  const Histogram::Snapshot sb = b.snapshot();
  const Histogram::Snapshot sc = c.snapshot();

  // (a + b) + c
  Histogram::Snapshot left = sa;
  left.Merge(sb);
  left.Merge(sc);
  // a + (b + c), folded in a different order
  Histogram::Snapshot right = sc;
  right.Merge(sb);
  right.Merge(sa);

  EXPECT_EQ(left.count, 600u);
  EXPECT_EQ(left.count, right.count);
  EXPECT_DOUBLE_EQ(left.sum, right.sum);
  EXPECT_EQ(left.counts, right.counts);
  EXPECT_DOUBLE_EQ(left.Quantile(0.95), right.Quantile(0.95));
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram h;
  for (int i = 1; i <= 50; ++i) h.Record(static_cast<double>(i));
  const Histogram::Snapshot base = h.snapshot();
  Histogram::Snapshot merged = base;
  merged.Merge(Histogram::Snapshot{});
  EXPECT_EQ(merged.count, base.count);
  EXPECT_DOUBLE_EQ(merged.sum, base.sum);
  EXPECT_EQ(merged.counts, base.counts);
  EXPECT_DOUBLE_EQ(merged.min, base.min);
  EXPECT_DOUBLE_EQ(merged.max, base.max);
}

TEST(HistogramTest, MinMaxTrackExactExtremes) {
  Histogram h;
  // Empty histogram: extremes read as 0 (matching count/sum).
  EXPECT_DOUBLE_EQ(h.snapshot().min, 0.0);
  EXPECT_DOUBLE_EQ(h.snapshot().max, 0.0);
  h.Record(250.0);
  EXPECT_DOUBLE_EQ(h.snapshot().min, 250.0);
  EXPECT_DOUBLE_EQ(h.snapshot().max, 250.0);
  h.Record(12.5);
  h.Record(9000.0);
  h.Record(100.0);
  const Histogram::Snapshot snap = h.snapshot();
  // Exact, not bucketed: the extremes are the recorded values themselves.
  EXPECT_DOUBLE_EQ(snap.min, 12.5);
  EXPECT_DOUBLE_EQ(snap.max, 9000.0);
}

TEST(HistogramTest, MergeTakesExtremesAcrossReplicas) {
  Histogram a;
  Histogram b;
  a.Record(5.0);
  a.Record(300.0);
  b.Record(1.0);
  b.Record(40.0);
  Histogram::Snapshot merged = a.snapshot();
  merged.Merge(b.snapshot());
  EXPECT_DOUBLE_EQ(merged.min, 1.0);
  EXPECT_DOUBLE_EQ(merged.max, 300.0);
  // An empty left side adopts the right side's extremes instead of
  // folding its 0 sentinel into the min.
  Histogram::Snapshot from_empty;
  from_empty.Merge(a.snapshot());
  EXPECT_DOUBLE_EQ(from_empty.min, 5.0);
  EXPECT_DOUBLE_EQ(from_empty.max, 300.0);
}

// Run under TSan in CI (serve-tsan job): concurrent Record must be free
// of data races, and no observation may be lost.
TEST(HistogramTest, ConcurrentRecord) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>((t * kPerThread + i) % 997) + 1.0);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t n : snap.counts) bucket_total += n;
  EXPECT_EQ(bucket_total, snap.count);
  EXPECT_GT(snap.sum, 0.0);
}

TEST(RegistryTest, GetOrCreateReturnsStableHandles) {
  Registry registry;
  Counter& c1 = registry.counter("requests_total", "m");
  Counter& c2 = registry.counter("requests_total", "m");
  EXPECT_EQ(&c1, &c2);
  c1.Increment(3);
  EXPECT_EQ(c2.Value(), 3u);
  // A different label is a different metric.
  Counter& other = registry.counter("requests_total", "n");
  EXPECT_NE(&c1, &other);
  EXPECT_EQ(other.Value(), 0u);
}

TEST(RegistryTest, SnapshotMergeSumsCountersAndGauges) {
  Registry a;
  Registry b;
  a.counter("reqs", "m").Increment(5);
  b.counter("reqs", "m").Increment(7);
  b.counter("reqs", "n").Increment(1);
  a.gauge("depth", "m").Set(2.0);
  b.gauge("depth", "m").Set(3.0);
  a.histogram("lat", "m").Record(10.0);
  b.histogram("lat", "m").Record(20.0);

  MetricsSnapshot merged = a.snapshot();
  merged.Merge(b.snapshot());
  EXPECT_EQ((merged.counters[{"reqs", "m"}]), 12u);
  EXPECT_EQ((merged.counters[{"reqs", "n"}]), 1u);
  EXPECT_DOUBLE_EQ((merged.gauges[{"depth", "m"}]), 5.0);
  EXPECT_EQ((merged.histograms[{"lat", "m"}].count), 2u);
  EXPECT_DOUBLE_EQ((merged.histograms[{"lat", "m"}].sum), 30.0);
}

TEST(RegistryTest, RenderTextFormat) {
  Registry registry;
  registry.counter("reqs_total", "enc.mcirbm").Increment(128);
  registry.gauge("replicas").Set(2.0);
  registry.histogram("wait_micros", "enc.mcirbm").Record(412.7);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("reqs_total{model=\"enc.mcirbm\"} 128"),
            std::string::npos)
      << text;
  // No braces when the label is empty.
  EXPECT_NE(text.find("replicas 2"), std::string::npos) << text;
  EXPECT_NE(text.find(
                "wait_micros{model=\"enc.mcirbm\",quantile=\"0.95\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wait_micros_count{model=\"enc.mcirbm\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wait_micros_sum{model=\"enc.mcirbm\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wait_micros_min{model=\"enc.mcirbm\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("wait_micros_max{model=\"enc.mcirbm\"}"),
            std::string::npos)
      << text;
}

TEST(RegistryTest, RenderTextEscapesQuotesAndBackslashesInLabels) {
  Registry registry;
  // A hostile-but-legal model key: Windows-ish path with an embedded
  // quote. Both specials must come out backslash-escaped so the label
  // stays a single well-formed quoted string.
  registry.counter("reqs_total", "C:\\models\\\"prod\".mcirbm")
      .Increment(2);
  const std::string text = registry.RenderText();
  EXPECT_NE(
      text.find(
          "reqs_total{model=\"C:\\\\models\\\\\\\"prod\\\".mcirbm\"} 2"),
      std::string::npos)
      << text;
  EXPECT_EQ(EscapeLabel("a\\b\"c"), "a\\\\b\\\"c");
}

}  // namespace
}  // namespace mcirbm::obs
