// obs::TraceStore — sampling cadence, ring-buffer wraparound, snapshot
// merge across replicas, rendering/JSONL escaping, and concurrent span
// writers (the last runs under ThreadSanitizer in the serve-tsan CI
// job, mirroring how batcher flusher threads and the request thread
// append to one TraceContext).
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace mcirbm::obs {
namespace {

// Drives one request through the store: sample, span, finish.
std::shared_ptr<TraceContext> Submit(TraceStore* store,
                                     std::int64_t start_micros,
                                     const std::string& op = "transform") {
  auto trace = store->MaybeStartTrace(op, "", start_micros);
  if (trace != nullptr) {
    trace->AddSpan("exec", start_micros + 1, 2, "m.mcirbm", 4);
    store->Finish(trace, start_micros + 10);
  }
  return trace;
}

TEST(TraceStoreTest, DisabledStoreNeverSamples) {
  TraceStore store;  // sample_every_n = 0
  EXPECT_FALSE(store.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(store.MaybeStartTrace("transform", "", i), nullptr);
  }
  EXPECT_TRUE(store.Recent(10).empty());
  EXPECT_EQ(store.snapshot().sampled, 0u);
}

TEST(TraceStoreTest, SamplesEveryNthRequest) {
  TraceConfig config;
  config.sample_every_n = 4;
  TraceStore store(config);
  ASSERT_TRUE(store.enabled());
  int sampled = 0;
  for (int i = 0; i < 40; ++i) {
    if (Submit(&store, i) != nullptr) ++sampled;
  }
  EXPECT_EQ(sampled, 10);
  const TraceStore::Snapshot snap = store.snapshot();
  EXPECT_EQ(snap.sampled, 10u);
  EXPECT_EQ(snap.completed, 10u);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_EQ(snap.traces.size(), 10u);
}

TEST(TraceStoreTest, RingEvictsOldestOnWraparound) {
  TraceConfig config;
  config.sample_every_n = 1;
  config.capacity = 4;
  TraceStore store(config);
  for (int i = 0; i < 10; ++i) Submit(&store, 100 * i);
  const TraceStore::Snapshot snap = store.snapshot();
  EXPECT_EQ(snap.completed, 10u);
  EXPECT_EQ(snap.dropped, 6u);
  ASSERT_EQ(snap.traces.size(), 4u);
  // The survivors are the four newest, oldest first.
  EXPECT_EQ(snap.traces.front().start_micros, 600);
  EXPECT_EQ(snap.traces.back().start_micros, 900);
  // Recent(n) returns the newest min(n, size), still oldest first.
  const std::vector<Trace> recent = store.Recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].start_micros, 800);
  EXPECT_EQ(recent[1].start_micros, 900);
}

TEST(TraceStoreTest, FinalizeSortsSpansAndClampsDuration) {
  TraceConfig config;
  config.sample_every_n = 1;
  TraceStore store(config);
  auto trace = store.MaybeStartTrace("transform", "t1", 1000);
  ASSERT_NE(trace, nullptr);
  // Appended out of start order, with one negative duration (a clock
  // hiccup must not produce a negative span).
  trace->AddSpan("exec", 1300, 50);
  trace->AddSpan("parse", 1010, -5);
  trace->AddSpan("queue", 1100, 150);
  store.Finish(trace, 1400);
  const std::vector<Trace> recent = store.Recent(1);
  ASSERT_EQ(recent.size(), 1u);
  const Trace& sealed = recent[0];
  EXPECT_EQ(sealed.duration_micros, 400);
  ASSERT_EQ(sealed.spans.size(), 3u);
  EXPECT_EQ(sealed.spans[0].name, "parse");
  EXPECT_EQ(sealed.spans[0].duration_micros, 0);
  EXPECT_EQ(sealed.spans[1].name, "queue");
  EXPECT_EQ(sealed.spans[2].name, "exec");
}

TEST(TraceStoreTest, SnapshotMergeInterleavesReplicasByStartTime) {
  TraceConfig config;
  config.sample_every_n = 1;
  TraceStore a(config);
  TraceStore b(config);
  Submit(&a, 100);
  Submit(&a, 300);
  Submit(&b, 200);
  Submit(&b, 400);
  TraceStore::Snapshot merged = a.snapshot();
  merged.Merge(b.snapshot());
  EXPECT_EQ(merged.sampled, 4u);
  EXPECT_EQ(merged.completed, 4u);
  ASSERT_EQ(merged.traces.size(), 4u);
  for (std::size_t i = 0; i + 1 < merged.traces.size(); ++i) {
    EXPECT_LE(merged.traces[i].start_micros,
              merged.traces[i + 1].start_micros);
  }
}

TEST(TraceStoreTest, JsonlSinkStreamsEveryCompletedTrace) {
  TraceConfig config;
  config.sample_every_n = 1;
  TraceStore store(config);
  std::vector<std::string> lines;
  store.SetJsonlSink([&lines](const std::string& line) {
    lines.push_back(line);
  });
  Submit(&store, 10);
  Submit(&store, 20);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"op\":\"transform\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"spans\":[{\"name\":\"exec\""),
            std::string::npos)
      << lines[0];
}

TEST(TraceStoreTest, JsonAndTextEscapeQuotesAndBackslashes) {
  Trace trace;
  trace.trace_id = 7;
  trace.op = "transform";
  trace.tag = "a\"b\\c";
  TraceSpan span;
  span.name = "exec";
  span.model_key = "dir\\\"m\".mcirbm";
  trace.spans.push_back(span);
  const std::string json = TraceStore::TraceToJsonLine(trace);
  EXPECT_NE(json.find("\"id\":\"a\\\"b\\\\c\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"model\":\"dir\\\\\\\"m\\\".mcirbm\""),
            std::string::npos)
      << json;
  const std::string text = TraceStore::RenderTracesText({trace}, "# ");
  EXPECT_EQ(text.rfind("# trace=7", 0), 0u) << text;
  EXPECT_NE(text.find("id=\"a\\\"b\\\\c\""), std::string::npos) << text;
}

// Run under TSan in CI: flusher threads and the request thread append
// spans to one context concurrently; none may be lost or torn.
TEST(TraceStoreTest, ConcurrentSpanWritersAndSamplers) {
  TraceConfig config;
  config.sample_every_n = 1;
  config.capacity = 4096;
  TraceStore store(config);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  auto shared = store.MaybeStartTrace("transform", "", 0);
  ASSERT_NE(shared, nullptr);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, &shared, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Half the work hammers the shared context, half exercises the
        // sample/finish path against the ring concurrently.
        shared->AddSpan("exec", t * kPerThread + i, 1);
        Submit(&store, t * kPerThread + i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  store.Finish(shared, kThreads * kPerThread + 1);
  const TraceStore::Snapshot snap = store.snapshot();
  EXPECT_EQ(snap.sampled, 1u + kThreads * kPerThread);
  EXPECT_EQ(snap.completed, snap.sampled);
  // The shared trace is the newest finish; every appended span arrived.
  const std::vector<Trace> recent = store.Recent(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0].spans.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace mcirbm::obs
