// ParseConfig / ParsePipelineSpec error paths and Model::Load rejection of
// malformed, truncated, and too-new model files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "api/api.h"

namespace mcirbm::api {
namespace {

TEST(ParseConfigTest, AppliesKeysOverBase) {
  core::PipelineConfig base;
  base.rbm.num_hidden = 7;
  auto config = ParseConfig(
      "model = sls-rbm\n"
      "# comment line\n"
      "rbm.epochs = 3\n"
      "sls.eta = 0.25\n"
      "supervision.voters = dp,kmeans*2\n",
      base);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config.value().model, core::ModelKind::kSlsRbm);
  EXPECT_EQ(config.value().rbm.num_hidden, 7);  // untouched base value
  EXPECT_EQ(config.value().rbm.epochs, 3);
  EXPECT_DOUBLE_EQ(config.value().sls.eta, 0.25);
  ASSERT_EQ(config.value().supervision.voters.size(), 2u);
  EXPECT_EQ(config.value().supervision.voters[1].count, 2);
}

TEST(ParseConfigTest, LaterLinesWin) {
  auto config = ParseConfig("rbm.epochs = 3\nrbm.epochs = 9\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().rbm.epochs, 9);
}

TEST(ParseConfigTest, UnknownKeyIsNotFoundWithLineNumber) {
  auto config = ParseConfig("rbm.epochs = 3\nrbm.bogus = 1\n");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kNotFound);
  EXPECT_NE(config.status().message().find("line 2"), std::string::npos)
      << config.status().ToString();
}

TEST(ParseConfigTest, MalformedValueIsParseError) {
  auto config = ParseConfig("rbm.epochs = three\n");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kParseError);
}

TEST(ParseConfigTest, LineWithoutEqualsRejected) {
  auto config = ParseConfig("just some words\n");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kParseError);
}

TEST(ParseConfigTest, UnknownModelNameRejected) {
  auto config = ParseConfig("model = autoencoder\n");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), StatusCode::kNotFound);
}

TEST(ParseConfigTest, BadEnumValuesRejected) {
  EXPECT_EQ(ParseConfig("rbm.weight_init = xavier\n").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseConfig("supervision.strategy = plurality\n").status().code(),
            StatusCode::kParseError);
}

TEST(ParsePipelineSpecTest, RequiresExactlyOneDataSource) {
  auto neither = ParsePipelineSpec("rbm.epochs = 2\n");
  ASSERT_FALSE(neither.ok());
  EXPECT_EQ(neither.status().code(), StatusCode::kInvalidArgument);

  auto both = ParsePipelineSpec(
      "data.path = x.csv\ndata.family = uci\ndata.index = 0\n");
  ASSERT_FALSE(both.ok());
  EXPECT_EQ(both.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParsePipelineSpecTest, ModelKeySelectsFamilyBaseConfig) {
  auto grbm = ParsePipelineSpec("data.family = uci\nmodel = sls-grbm\n");
  ASSERT_TRUE(grbm.ok()) << grbm.status().ToString();
  auto rbm = ParsePipelineSpec("data.family = uci\nmodel = sls-rbm\n");
  ASSERT_TRUE(rbm.ok()) << rbm.status().ToString();
  // The paper uses different family hyper-parameters; the spec should have
  // picked them up before any overrides.
  EXPECT_NE(grbm.value().config.rbm.learning_rate,
            rbm.value().config.rbm.learning_rate);
}

TEST(ParsePipelineSpecTest, RejectsBadSpecValues) {
  EXPECT_EQ(
      ParsePipelineSpec("data.family = imagenet\n").status().code(),
      StatusCode::kParseError);
  EXPECT_EQ(ParsePipelineSpec("data.family = uci\ndata.transform = fft\n")
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      ParsePipelineSpec("data.family = uci\neval.clusterer = birch\n")
          .status()
          .code(),
      StatusCode::kNotFound);
  EXPECT_EQ(
      ParsePipelineSpec("data.family = uci\ndata.max_instances = -5\n")
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(ParsePipelineSpecFileTest, MissingFileIsIoError) {
  auto spec = ParsePipelineSpecFile("/nonexistent/run.cfg");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kIoError);
}

class ModelLoadErrorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/api_model_load_error_test.mcirbm";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& contents) {
    std::ofstream out(path_);
    out << contents;
  }

  std::string path_;
};

TEST_F(ModelLoadErrorTest, MissingFileIsIoError) {
  auto model = Model::Load("/nonexistent/model.mcirbm");
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kIoError);
}

TEST_F(ModelLoadErrorTest, EmptyFileRejected) {
  WriteFile("");
  auto model = Model::Load(path_);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kParseError);
}

TEST_F(ModelLoadErrorTest, GarbageMagicRejected) {
  WriteFile("definitely not a model\n1 2 3\n");
  auto model = Model::Load(path_);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kParseError);
}

TEST_F(ModelLoadErrorTest, NewerFormatVersionRejected) {
  WriteFile("mcirbm-model v999\nkind: rbm\n");
  auto model = Model::Load(path_);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineValidationTest, BadCdKFromConfigIsStatusNotAbort) {
  auto config = ParseConfig("rbm.cd_k = 0\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  linalg::Matrix x(8, 3);
  auto model = Model::Train(x, config.value(), 1);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineValidationTest, RegistryRejectsBadHyperParameters) {
  auto& registry = ModelRegistry::Global();
  EXPECT_EQ(registry.Create("rbm", {{"visible", "4"}, {"cd_k", "0"}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Create("rbm", {{"visible", "4"}, {"lr", "-1"}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Create("rbm", {{"visible", "4"}, {"epochs", "-2"}})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  voting::LocalSupervision sup;
  sup.cluster_of = {0, 0, 1, 1};
  sup.num_clusters = 2;
  EXPECT_EQ(registry
                .Create("sls-rbm",
                        {{"visible", "4"}, {"scale", "-1"}}, sup)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ModelLoadErrorTest, MissingKindHeaderRejected) {
  WriteFile("mcirbm-model v1\n");
  auto model = Model::Load(path_);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kParseError);
}

TEST_F(ModelLoadErrorTest, ImplausibleShapeRejectedNotAborted) {
  // A corrupted shape line must not overflow the int narrowing in
  // LoadInferenceModel or attempt a giant allocation.
  WriteFile("mcirbm-model v1\nkind: rbm\nmcirbm-rbm v1\nrbm\n"
            "2147483648 4\na: 0\nb: 0\nW:\n0\n");
  auto model = Model::Load(path_);
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kParseError);
}

TEST_F(ModelLoadErrorTest, TruncatedPayloadRejected) {
  // Train a real tiny model, save it, then chop the file mid-payload.
  linalg::Matrix x(12, 4);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      x(i, j) = static_cast<double>((i * 7 + j * 3) % 5) / 5.0;
    }
  }
  core::PipelineConfig config;
  config.model = core::ModelKind::kRbm;
  config.rbm.num_hidden = 3;
  config.rbm.epochs = 1;
  auto trained = Model::Train(x, config, 5);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  ASSERT_TRUE(trained.value().Save(path_).ok());

  std::string contents;
  {
    std::ifstream in(path_);
    contents.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
  }
  ASSERT_GT(contents.size(), 40u);
  WriteFile(contents.substr(0, contents.size() / 2));

  auto model = Model::Load(path_);
  ASSERT_FALSE(model.ok());  // must not abort
}

}  // namespace
}  // namespace mcirbm::api
