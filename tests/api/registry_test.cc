// Registry surface: built-in names, Create error paths, duplicate
// registration, voter-spec resolution.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/api.h"
#include "data/synthetic.h"

namespace mcirbm {
namespace {

bool Listed(const std::vector<std::string>& names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

TEST(ClustererRegistryTest, ListsAllBuiltins) {
  const auto names = clustering::ClustererRegistry::Global().ListRegistered();
  for (const char* expected : {"dp", "kmeans", "ap", "agglomerative",
                               "dbscan", "gmm", "spectral"}) {
    EXPECT_TRUE(Listed(names, expected)) << expected;
  }
}

TEST(ClustererRegistryTest, UnknownNameIsNotFound) {
  auto result = clustering::ClustererRegistry::Global().Create(
      "nonexistent", ParamMap{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ClustererRegistryTest, DuplicateRegistrationFails) {
  auto& registry = clustering::ClustererRegistry::Global();
  ASSERT_TRUE(registry
                  .Register("registry-test-dup",
                            [](const ParamMap&) {
                              return StatusOr<
                                  std::unique_ptr<clustering::Clusterer>>(
                                  Status::Internal("unused"));
                            })
                  .ok());
  const Status again = registry.Register(
      "registry-test-dup", [](const ParamMap&) {
        return StatusOr<std::unique_ptr<clustering::Clusterer>>(
            Status::Internal("unused"));
      });
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
}

TEST(ClustererRegistryTest, UnknownParameterRejected) {
  ParamMap params;
  params.Set("k", "3");
  params.Set("bogus", "1");
  auto result =
      clustering::ClustererRegistry::Global().Create("kmeans", params);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ClustererRegistryTest, MalformedParameterRejected) {
  ParamMap params;
  params.Set("k", "three");
  auto result =
      clustering::ClustererRegistry::Global().Create("kmeans", params);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(ClustererRegistryTest, CreatedClusterersCluster) {
  data::GaussianMixtureSpec spec;
  spec.name = "reg";
  spec.num_classes = 2;
  spec.num_instances = 40;
  spec.num_features = 4;
  spec.separation = 6.0;
  const data::Dataset ds = data::GenerateGaussianMixture(spec, 3);
  for (const auto& name :
       clustering::ClustererRegistry::Global().ListRegistered()) {
    if (name == "registry-test-dup") continue;  // stub from the dup test
    ParamMap params;
    params.Set("k", "2");
    auto clusterer =
        clustering::ClustererRegistry::Global().Create(name, params);
    ASSERT_TRUE(clusterer.ok()) << name << ": "
                                << clusterer.status().ToString();
    const auto result = clusterer.value()->Cluster(ds.x, 5);
    EXPECT_EQ(result.assignment.size(), ds.num_instances()) << name;
  }
}

TEST(ModelRegistryTest, ListsAllBuiltins) {
  const auto names = api::ModelRegistry::Global().ListRegistered();
  for (const char* expected : {"rbm", "grbm", "sls-rbm", "sls-grbm"}) {
    EXPECT_TRUE(Listed(names, expected)) << expected;
  }
}

TEST(ModelRegistryTest, UnknownNameIsNotFound) {
  auto result = api::ModelRegistry::Global().Create("transformer", {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, CreateRequiresVisibleSize) {
  auto result =
      api::ModelRegistry::Global().Create("rbm", {{"hidden", "4"}});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ModelRegistryTest, CreatesEveryBuiltinKind) {
  voting::LocalSupervision supervision;
  supervision.cluster_of = {0, 0, 1, 1};
  supervision.num_clusters = 2;
  for (const char* name : {"rbm", "grbm", "sls-rbm", "sls-grbm"}) {
    auto result = api::ModelRegistry::Global().Create(
        name, {{"visible", "6"}, {"hidden", "4"}}, supervision);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_EQ(result.value()->name(), name);
    EXPECT_EQ(result.value()->weights().rows(), 6u);
    EXPECT_EQ(result.value()->weights().cols(), 4u);
  }
}

TEST(ModelRegistryTest, KindNameMappingRoundTrips) {
  for (const auto kind :
       {core::ModelKind::kRbm, core::ModelKind::kGrbm,
        core::ModelKind::kSlsRbm, core::ModelKind::kSlsGrbm}) {
    auto back = api::ModelKindFromName(api::ModelKindRegistryName(kind));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), kind);
  }
  EXPECT_FALSE(api::ModelKindFromName("mlp").ok());
}

TEST(VoterSpecTest, ParseVoterListHandlesCountsAndErrors) {
  auto specs = core::ParseVoterList("dp, kmeans*3 ,ap");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs.value().size(), 3u);
  EXPECT_EQ(specs.value()[0].clusterer, "dp");
  EXPECT_EQ(specs.value()[1].clusterer, "kmeans");
  EXPECT_EQ(specs.value()[1].count, 3);
  EXPECT_EQ(specs.value()[2].clusterer, "ap");

  EXPECT_EQ(core::ParseVoterList("dp,unknown").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(core::ParseVoterList("kmeans*zero").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(core::ParseVoterList("kmeans*0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(core::ParseVoterList("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(VoterSpecTest, SpecsMatchDeprecatedFlagShimExactly) {
  data::GaussianMixtureSpec spec;
  spec.name = "shim";
  spec.num_classes = 2;
  spec.num_instances = 60;
  spec.num_features = 5;
  spec.separation = 5.0;
  const data::Dataset ds = data::GenerateGaussianMixture(spec, 9);

  // Deprecated bool-flag form (dp + kmeans×2 + ap).
  core::SupervisionConfig flags;
  flags.num_clusters = 2;
  flags.kmeans_voters = 2;

  // Equivalent registry voter-spec form.
  core::SupervisionConfig specs = flags;
  specs.voters = {{"dp", {}, 1}, {"kmeans", {}, 2}, {"ap", {}, 1}};

  const auto from_flags =
      core::ComputeSelfLearningSupervision(ds.x, flags, 17);
  const auto from_specs =
      core::ComputeSelfLearningSupervision(ds.x, specs, 17);
  EXPECT_EQ(from_flags.cluster_of, from_specs.cluster_of);
  EXPECT_EQ(from_flags.num_clusters, from_specs.num_clusters);
}

TEST(VoterSpecTest, EmptyVoterSetIsInvalidArgument) {
  data::GaussianMixtureSpec spec;
  spec.name = "none";
  spec.num_classes = 2;
  spec.num_instances = 20;
  spec.num_features = 3;
  spec.separation = 5.0;
  const data::Dataset ds = data::GenerateGaussianMixture(spec, 1);
  core::SupervisionConfig config;
  config.num_clusters = 2;
  config.use_density_peaks = false;
  config.use_kmeans = false;
  config.use_affinity_propagation = false;
  auto sup = core::TryComputeSelfLearningSupervision(ds.x, config, 1);
  ASSERT_FALSE(sup.ok());
  EXPECT_EQ(sup.status().code(), StatusCode::kInvalidArgument);
}

TEST(VoterSpecTest, UnknownVoterNameSurfacesAsStatus) {
  data::GaussianMixtureSpec spec;
  spec.name = "bad";
  spec.num_classes = 2;
  spec.num_instances = 20;
  spec.num_features = 3;
  spec.separation = 5.0;
  const data::Dataset ds = data::GenerateGaussianMixture(spec, 1);
  core::SupervisionConfig config;
  config.num_clusters = 2;
  config.voters = {{"definitely-not-a-clusterer", {}, 1}};
  auto sup = core::TryComputeSelfLearningSupervision(ds.x, config, 1);
  ASSERT_FALSE(sup.ok());
  EXPECT_EQ(sup.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mcirbm
