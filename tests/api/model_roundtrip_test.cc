// api::Model save -> load -> transform round-trip parity with an in-memory
// pipeline run, for all four model kinds.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "api/api.h"
#include "data/synthetic.h"
#include "rbm/serialize.h"

namespace mcirbm::api {
namespace {

core::PipelineConfig TinyConfig(core::ModelKind kind) {
  core::PipelineConfig config;
  config.model = kind;
  config.rbm.num_hidden = 5;
  config.rbm.epochs = 2;
  config.rbm.batch_size = 10;
  config.supervision.num_clusters = 2;
  return config;
}

class ModelRoundTripTest
    : public ::testing::TestWithParam<core::ModelKind> {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/api_roundtrip_" +
            ModelKindRegistryName(GetParam()) + ".mcirbm";
    data::GaussianMixtureSpec spec;
    spec.name = "roundtrip";
    spec.num_classes = 2;
    spec.num_instances = 40;
    spec.num_features = 6;
    spec.separation = 6.0;
    x_ = data::GenerateGaussianMixture(spec, 21).x;
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  linalg::Matrix x_;
};

TEST_P(ModelRoundTripTest, SaveLoadTransformMatchesInMemoryRun) {
  const core::ModelKind kind = GetParam();
  const core::PipelineConfig config = TinyConfig(kind);
  constexpr std::uint64_t kSeed = 33;

  // Reference: the raw core pipeline, bypassing the facade.
  const core::PipelineResult reference =
      core::RunEncoderPipeline(x_, config, kSeed);

  // Facade training must reproduce it bit-for-bit.
  auto trained = Model::Train(x_, config, kSeed);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  EXPECT_EQ(trained.value().kind(), ModelKindRegistryName(kind));
  EXPECT_EQ(trained.value().num_visible(), x_.cols());
  EXPECT_EQ(trained.value().num_hidden(), 5u);
  EXPECT_EQ(trained.value().num_layers(), 1u);

  auto in_memory = trained.value().Transform(x_);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status().ToString();
  EXPECT_TRUE(
      in_memory.value().AllClose(reference.hidden_features, 0))
      << "facade transform diverged from the core pipeline";

  // Disk round-trip: save, reload, transform again — bit-identical.
  ASSERT_TRUE(trained.value().Save(path_).ok());
  auto restored = Model::Load(path_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().kind(), ModelKindRegistryName(kind));
  EXPECT_EQ(restored.value().num_visible(), x_.cols());
  EXPECT_EQ(restored.value().num_hidden(), 5u);

  auto reloaded = restored.value().Transform(x_);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(reloaded.value().AllClose(in_memory.value(), 0))
      << "reloaded transform diverged from the freshly trained model";
}

TEST_P(ModelRoundTripTest, LegacyBareFilePreservesStoredKind) {
  const core::ModelKind kind = GetParam();
  auto trained = Model::Train(x_, TinyConfig(kind), 33);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();

  // Pre-facade artifact: a bare rbm/serialize parameter file with no
  // "mcirbm-model" wrapper. Its payload name must survive Load.
  ASSERT_TRUE(rbm::SaveParameters(trained.value().encoder(), path_).ok());
  auto restored = Model::Load(path_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().kind(), ModelKindRegistryName(kind));

  auto expected = trained.value().Transform(x_);
  auto actual = restored.value().Transform(x_);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(actual.ok());
  EXPECT_TRUE(actual.value().AllClose(expected.value(), 0));
}

TEST_P(ModelRoundTripTest, TransformRejectsWrongWidth) {
  auto trained = Model::Train(x_, TinyConfig(GetParam()), 3);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  linalg::Matrix narrow(x_.rows(), x_.cols() - 1);
  auto features = trained.value().Transform(narrow);
  ASSERT_FALSE(features.ok());
  EXPECT_EQ(features.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(ModelRoundTripTest, EvaluateScoresLoadedModel) {
  data::GaussianMixtureSpec spec;
  spec.name = "eval";
  spec.num_classes = 2;
  spec.num_instances = 40;
  spec.num_features = 6;
  spec.separation = 6.0;
  const data::Dataset ds = data::GenerateGaussianMixture(spec, 21);

  auto trained = Model::Train(ds.x, TinyConfig(GetParam()), 33);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  ASSERT_TRUE(trained.value().Save(path_).ok());
  auto restored = Model::Load(path_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  auto result = restored.value().Evaluate(ds.x, ds.labels);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().clusters_found, 2);
  EXPECT_GE(result.value().metrics.accuracy, 0.0);
  EXPECT_LE(result.value().metrics.accuracy, 1.0);

  auto bad = restored.value().Evaluate(
      ds.x, ds.labels, {.clusterer = "nonexistent"});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ModelRoundTripTest,
    ::testing::Values(core::ModelKind::kRbm, core::ModelKind::kGrbm,
                      core::ModelKind::kSlsRbm, core::ModelKind::kSlsGrbm),
    [](const ::testing::TestParamInfo<core::ModelKind>& info) {
      std::string name = ModelKindRegistryName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mcirbm::api
