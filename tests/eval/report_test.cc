#include "eval/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace mcirbm::eval {
namespace {

// Fabricated results where sls strictly dominates: every shape check must
// pass. Values are arbitrary but ordered raw < plain < sls.
std::vector<DatasetExperimentResult> FakeResults(int n) {
  std::vector<DatasetExperimentResult> results(n);
  for (int i = 0; i < n; ++i) {
    results[i].dataset = "D" + std::to_string(i + 1);
    results[i].dataset_number = i + 1;
    for (int c = 0; c < kNumClusterers; ++c) {
      for (int v = 0; v < kNumVariants; ++v) {
        const double base = 0.3 + 0.1 * v + 0.01 * i + 0.005 * c;
        auto& cell = results[i].cells[v][c];
        cell.accuracy = {base, 1e-4};
        cell.purity = {base + 0.3, 1e-4};
        cell.rand_index = {base + 0.1, 1e-4};
        cell.fmi = {base + 0.05, 1e-4};
      }
    }
  }
  return results;
}

TEST(ShapeCheckTest, DominatingSlsPassesAllChecks) {
  const auto results = FakeResults(9);
  const auto checks = EvaluateShapeChecks(results, "accuracy", true);
  EXPECT_EQ(checks.size(), 6u);  // 2 checks x 3 clusterers
  for (const auto& check : checks) EXPECT_TRUE(check.Passes());
}

TEST(ShapeCheckTest, InvertedOrderFailsChecks) {
  auto results = FakeResults(6);
  // Make raw beat sls for every cell.
  for (auto& r : results) {
    for (int c = 0; c < kNumClusterers; ++c) {
      std::swap(r.cells[0][c], r.cells[2][c]);
    }
  }
  const auto checks = EvaluateShapeChecks(results, "accuracy", false);
  int failures = 0;
  for (const auto& check : checks) failures += !check.Passes();
  EXPECT_GT(failures, 0);
}

TEST(PrintShapeChecksTest, CountsFailuresAndPrintsVerdicts) {
  std::vector<ShapeCheck> checks = {
      {"claim A", true, true},
      {"claim B", true, false},
  };
  std::ostringstream out;
  const int failures = PrintShapeChecks(out, checks);
  EXPECT_EQ(failures, 1);
  EXPECT_NE(out.str().find("[ OK ] claim A"), std::string::npos);
  EXPECT_NE(out.str().find("[FAIL] claim B"), std::string::npos);
}

TEST(PrintTableComparisonTest, ContainsHeadersAndPaperValues) {
  const auto results = FakeResults(9);
  std::ostringstream out;
  PrintTableComparison(out, PaperTable::kTable4AccuracyMsra, results);
  const std::string s = out.str();
  EXPECT_NE(s.find("Table IV"), std::string::npos);
  EXPECT_NE(s.find("DP+slsGRBM"), std::string::npos);
  EXPECT_NE(s.find("Average"), std::string::npos);
  // Paper value for BO / DP appears in parentheses.
  EXPECT_NE(s.find("(0.4275)"), std::string::npos);
}

TEST(PrintFigureSeriesTest, EmitsThreePanels) {
  const auto results = FakeResults(6);
  std::ostringstream out;
  PrintFigureSeries(out, PaperTable::kTable7AccuracyUci, results);
  const std::string s = out.str();
  EXPECT_NE(s.find("panel DP"), std::string::npos);
  EXPECT_NE(s.find("panel K-means"), std::string::npos);
  EXPECT_NE(s.find("panel AP"), std::string::npos);
}

TEST(PrintAveragesFigureTest, UsesFamilyMetrics) {
  const auto results = FakeResults(9);
  std::ostringstream out;
  PrintAveragesFigure(out, /*grbm_family=*/true, results);
  EXPECT_NE(out.str().find("purity"), std::string::npos);
  std::ostringstream out2;
  PrintAveragesFigure(out2, /*grbm_family=*/false, FakeResults(6));
  EXPECT_NE(out2.str().find("rand"), std::string::npos);
}

TEST(PrintTableComparisonDeathTest, WrongRowCountAborts) {
  const auto results = FakeResults(5);
  std::ostringstream out;
  EXPECT_DEATH(
      PrintTableComparison(out, PaperTable::kTable4AccuracyMsra, results),
      "CHECK failed");
}

}  // namespace
}  // namespace mcirbm::eval
