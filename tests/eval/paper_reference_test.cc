#include "eval/paper_reference.h"

#include <gtest/gtest.h>

namespace mcirbm::eval {
namespace {

const PaperTable kAllTables[] = {
    PaperTable::kTable4AccuracyMsra, PaperTable::kTable5PurityMsra,
    PaperTable::kTable6FmiMsra,      PaperTable::kTable7AccuracyUci,
    PaperTable::kTable8RandUci,      PaperTable::kTable9FmiUci,
};

TEST(PaperReferenceTest, RowCountsMatchFamilies) {
  EXPECT_EQ(PaperTableRows(PaperTable::kTable4AccuracyMsra), 9);
  EXPECT_EQ(PaperTableRows(PaperTable::kTable7AccuracyUci), 6);
}

TEST(PaperReferenceTest, AllValuesAreValidFractions) {
  for (PaperTable table : kAllTables) {
    for (int row = 0; row < PaperTableRows(table); ++row) {
      for (int v = 0; v < kNumVariants; ++v) {
        for (int c = 0; c < kNumClusterers; ++c) {
          const double value =
              PaperValue(table, row, static_cast<Variant>(v),
                         static_cast<ClustererKind>(c));
          EXPECT_GT(value, 0.0);
          EXPECT_LT(value, 1.0);
        }
      }
    }
  }
}

// Spot checks against the paper text.
TEST(PaperReferenceTest, SpotCheckTable4) {
  EXPECT_DOUBLE_EQ(PaperValue(PaperTable::kTable4AccuracyMsra, 0,
                              Variant::kRaw, ClustererKind::kDensityPeaks),
                   0.4275);  // BO / DP
  EXPECT_DOUBLE_EQ(PaperValue(PaperTable::kTable4AccuracyMsra, 8,
                              Variant::kSls, ClustererKind::kAffinityProp),
                   0.6223);  // VT / AP+slsGRBM
}

TEST(PaperReferenceTest, SpotCheckTable7) {
  EXPECT_DOUBLE_EQ(PaperValue(PaperTable::kTable7AccuracyUci, 5,
                              Variant::kSls, ClustererKind::kDensityPeaks),
                   0.98);  // IR / DP+slsRBM
  EXPECT_DOUBLE_EQ(PaperValue(PaperTable::kTable7AccuracyUci, 3,
                              Variant::kPlain, ClustererKind::kDensityPeaks),
                   0.8056);  // SC / DP+RBM
}

// The paper's own "Average" rows must match the mean of the embedded cells
// (to rounding): guards against transcription slips.
TEST(PaperReferenceTest, AveragesConsistentWithCells) {
  struct Expected {
    PaperTable table;
    Variant variant;
    ClustererKind clusterer;
    double printed_average;
  };
  const Expected cases[] = {
      {PaperTable::kTable4AccuracyMsra, Variant::kRaw,
       ClustererKind::kDensityPeaks, 0.4779},
      {PaperTable::kTable4AccuracyMsra, Variant::kSls,
       ClustererKind::kKMeans, 0.5255},
      {PaperTable::kTable5PurityMsra, Variant::kSls,
       ClustererKind::kDensityPeaks, 0.8603},
      {PaperTable::kTable6FmiMsra, Variant::kSls, ClustererKind::kKMeans,
       0.5306},
      {PaperTable::kTable7AccuracyUci, Variant::kSls,
       ClustererKind::kDensityPeaks, 0.7757},
      {PaperTable::kTable8RandUci, Variant::kRaw, ClustererKind::kKMeans,
       0.6077},
      {PaperTable::kTable9FmiUci, Variant::kPlain,
       ClustererKind::kAffinityProp, 0.6338},
  };
  for (const auto& c : cases) {
    EXPECT_NEAR(PaperAverage(c.table, c.variant, c.clusterer),
                c.printed_average, 6e-4)
        << PaperTableTitle(c.table);
  }
}

// The paper's central claims hold inside the embedded data: sls beats raw
// and plain on every family average.
TEST(PaperReferenceTest, EmbeddedDataSupportsHeadlineClaims) {
  for (PaperTable table : kAllTables) {
    for (int c = 0; c < kNumClusterers; ++c) {
      const auto kind = static_cast<ClustererKind>(c);
      const double raw = PaperAverage(table, Variant::kRaw, kind);
      const double plain = PaperAverage(table, Variant::kPlain, kind);
      const double sls = PaperAverage(table, Variant::kSls, kind);
      EXPECT_GT(sls, raw) << PaperTableTitle(table) << " "
                          << ClustererKindName(kind);
      EXPECT_GT(sls, plain) << PaperTableTitle(table) << " "
                            << ClustererKindName(kind);
    }
  }
}

TEST(PaperReferenceTest, DatasetNamesMatchTables) {
  const auto& msra = PaperTableDatasetNames(PaperTable::kTable4AccuracyMsra);
  ASSERT_EQ(msra.size(), 9u);
  EXPECT_EQ(msra.front(), "BO");
  EXPECT_EQ(msra.back(), "VT");
  const auto& uci = PaperTableDatasetNames(PaperTable::kTable8RandUci);
  ASSERT_EQ(uci.size(), 6u);
  EXPECT_EQ(uci.front(), "HS");
  EXPECT_EQ(uci.back(), "IR");
}

TEST(PaperReferenceTest, MetricNamesRoundTrip) {
  EXPECT_EQ(PaperTableMetric(PaperTable::kTable4AccuracyMsra), "accuracy");
  EXPECT_EQ(PaperTableMetric(PaperTable::kTable5PurityMsra), "purity");
  EXPECT_EQ(PaperTableMetric(PaperTable::kTable8RandUci), "rand");
  EXPECT_EQ(PaperTableMetric(PaperTable::kTable9FmiUci), "fmi");
}

TEST(PaperReferenceDeathTest, RowOutOfRangeAborts) {
  EXPECT_DEATH(PaperValue(PaperTable::kTable7AccuracyUci, 6, Variant::kRaw,
                          ClustererKind::kKMeans),
               "CHECK failed");
}

}  // namespace
}  // namespace mcirbm::eval
