#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace mcirbm::eval {
namespace {

data::Dataset SmallDataset(std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "exp-test";
  spec.num_classes = 2;
  spec.num_instances = 70;
  spec.num_features = 8;
  spec.separation = 4.0;
  return data::GenerateGaussianMixture(spec, seed);
}

ExperimentConfig FastConfig(bool grbm) {
  ExperimentConfig cfg = MakePaperConfig(grbm);
  cfg.repeats = 2;
  cfg.rbm.epochs = 6;
  cfg.rbm.num_hidden = 6;
  return cfg;
}

TEST(MakePaperConfigTest, UsesPaperHyperparameters) {
  const ExperimentConfig grbm = MakePaperConfig(true);
  EXPECT_DOUBLE_EQ(grbm.rbm.learning_rate, 1e-4);
  EXPECT_DOUBLE_EQ(grbm.sls.eta, 0.4);
  const ExperimentConfig rbm = MakePaperConfig(false);
  EXPECT_DOUBLE_EQ(rbm.rbm.learning_rate, 1e-5);
  EXPECT_DOUBLE_EQ(rbm.sls.eta, 0.5);
}

TEST(CellNameTest, MatchesPaperNotation) {
  EXPECT_EQ(CellName(Variant::kRaw, ClustererKind::kDensityPeaks, true),
            "DP");
  EXPECT_EQ(CellName(Variant::kPlain, ClustererKind::kKMeans, true),
            "K-means+GRBM");
  EXPECT_EQ(CellName(Variant::kSls, ClustererKind::kAffinityProp, false),
            "AP+slsRBM");
}

TEST(RunDatasetExperimentTest, ProducesAllCellsInRange) {
  const auto result =
      RunDatasetExperiment(SmallDataset(1), 1, FastConfig(true));
  EXPECT_EQ(result.dataset_number, 1);
  for (int v = 0; v < kNumVariants; ++v) {
    for (int c = 0; c < kNumClusterers; ++c) {
      const auto& cell = result.cells[v][c];
      EXPECT_GE(cell.accuracy.mean, 0);
      EXPECT_LE(cell.accuracy.mean, 1);
      EXPECT_GE(cell.accuracy.variance, 0);
      EXPECT_GE(cell.purity.mean, cell.accuracy.mean - 1e-9);
      EXPECT_GE(cell.fmi.mean, 0);
      EXPECT_LE(cell.rand_index.mean, 1);
    }
  }
  EXPECT_GE(result.supervision_coverage, 0);
  EXPECT_LE(result.supervision_coverage, 1);
  EXPECT_GT(result.wall_seconds, 0);
}

TEST(RunDatasetExperimentTest, RbmFamilyAlsoRuns) {
  const auto result =
      RunDatasetExperiment(SmallDataset(2), 3, FastConfig(false));
  EXPECT_EQ(result.dataset_number, 3);
  EXPECT_GT(result.cells[0][1].accuracy.mean, 0.4);
}

TEST(RunDatasetExperimentTest, SubsamplingCapsInstances) {
  ExperimentConfig cfg = FastConfig(true);
  cfg.max_instances = 40;
  // Just verifies the path runs; correctness of subsampling is covered in
  // data tests.
  const auto result = RunDatasetExperiment(SmallDataset(3), 1, cfg);
  EXPECT_FALSE(result.dataset.empty());
}

TEST(RunDatasetExperimentTest, DeterministicGivenSeed) {
  const auto a = RunDatasetExperiment(SmallDataset(4), 1, FastConfig(true));
  const auto b = RunDatasetExperiment(SmallDataset(4), 1, FastConfig(true));
  for (int v = 0; v < kNumVariants; ++v) {
    for (int c = 0; c < kNumClusterers; ++c) {
      EXPECT_DOUBLE_EQ(a.cells[v][c].accuracy.mean,
                       b.cells[v][c].accuracy.mean);
    }
  }
}

TEST(MetricByNameTest, SelectsCorrectField) {
  AggregatedMetrics m;
  m.accuracy.mean = 0.1;
  m.purity.mean = 0.2;
  m.rand_index.mean = 0.3;
  m.fmi.mean = 0.4;
  m.ari.mean = 0.5;
  m.nmi.mean = 0.6;
  EXPECT_DOUBLE_EQ(MetricByName(m, "accuracy").mean, 0.1);
  EXPECT_DOUBLE_EQ(MetricByName(m, "purity").mean, 0.2);
  EXPECT_DOUBLE_EQ(MetricByName(m, "rand").mean, 0.3);
  EXPECT_DOUBLE_EQ(MetricByName(m, "fmi").mean, 0.4);
  EXPECT_DOUBLE_EQ(MetricByName(m, "ari").mean, 0.5);
  EXPECT_DOUBLE_EQ(MetricByName(m, "nmi").mean, 0.6);
}

TEST(MetricByNameDeathTest, UnknownMetricAborts) {
  AggregatedMetrics m;
  EXPECT_DEATH(MetricByName(m, "f1"), "unknown metric");
}

TEST(FamilyAverageTest, AveragesAcrossDatasets) {
  DatasetExperimentResult a, b;
  a.cells[0][0].accuracy.mean = 0.4;
  b.cells[0][0].accuracy.mean = 0.6;
  const double avg = FamilyAverage({a, b}, Variant::kRaw,
                                   ClustererKind::kDensityPeaks, "accuracy");
  EXPECT_DOUBLE_EQ(avg, 0.5);
}

}  // namespace
}  // namespace mcirbm::eval
