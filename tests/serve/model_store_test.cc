// serve::ModelStore — caching, LRU eviction, hot reload, and safety for
// concurrent readers (the thread-interleaving test is the ThreadSanitizer
// target for the store).
#include "serve/model_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "data/synthetic.h"

namespace mcirbm::serve {
namespace {

linalg::Matrix TestData() {
  data::GaussianMixtureSpec spec;
  spec.name = "store";
  spec.num_classes = 2;
  spec.num_instances = 30;
  spec.num_features = 6;
  spec.separation = 6.0;
  return data::GenerateGaussianMixture(spec, 21).x;
}

// Trains one tiny plain GRBM (no supervision voters — fast) and saves it.
api::Model TrainTiny(const linalg::Matrix& x, std::uint64_t seed) {
  core::PipelineConfig config;
  config.model = core::ModelKind::kGrbm;
  config.rbm.num_hidden = 4;
  config.rbm.epochs = 2;
  config.rbm.batch_size = 10;
  auto model = api::Model::Train(x, config, seed);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

class ModelStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    x_ = TestData();
    for (int i = 0; i < 3; ++i) {
      paths_.push_back(::testing::TempDir() + "/store_model_" +
                       std::to_string(i) + ".mcirbm");
      ASSERT_TRUE(TrainTiny(x_, 100 + i).Save(paths_.back()).ok());
    }
  }
  void TearDown() override {
    for (const std::string& path : paths_) std::remove(path.c_str());
  }

  linalg::Matrix x_;
  std::vector<std::string> paths_;
};

TEST_F(ModelStoreTest, GetCachesAndSharesOneInstance) {
  ModelStore store(4);
  auto first = store.Get(paths_[0]);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = store.Get(paths_[0]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().get(), second.value().get())
      << "cache hit must return the same shared instance";
  EXPECT_EQ(store.size(), 1u);
  const ModelStore::Stats stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST_F(ModelStoreTest, EvictsLeastRecentlyUsed) {
  ModelStore store(2);
  ASSERT_TRUE(store.Get(paths_[0]).ok());
  ASSERT_TRUE(store.Get(paths_[1]).ok());
  ASSERT_TRUE(store.Get(paths_[0]).ok());  // touch 0: 1 is now LRU
  ASSERT_TRUE(store.Get(paths_[2]).ok());  // evicts 1
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.stats().evictions, 1u);
  const std::uint64_t misses_before = store.stats().misses;
  ASSERT_TRUE(store.Get(paths_[0]).ok());  // still cached
  EXPECT_EQ(store.stats().misses, misses_before);
  ASSERT_TRUE(store.Get(paths_[1]).ok());  // was evicted: reloads
  EXPECT_EQ(store.stats().misses, misses_before + 1);
}

TEST_F(ModelStoreTest, EvictionKeepsInFlightReadersAlive) {
  ModelStore store(1);
  auto held = store.Get(paths_[0]);
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE(store.Get(paths_[1]).ok());  // evicts paths_[0]'s entry
  // The evicted model is still fully usable through our reference.
  auto features = held.value()->Transform(x_);
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_EQ(features.value().rows(), x_.rows());
}

TEST_F(ModelStoreTest, ReloadSwapsTheInstance) {
  ModelStore store(4);
  auto before = store.Get(paths_[0]);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(store.Reload(paths_[0]).ok());
  auto after = store.Get(paths_[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before.value().get(), after.value().get());
  EXPECT_EQ(store.stats().reloads, 1u);
  // Both instances transform identically (same artifact on disk).
  EXPECT_TRUE(before.value()->Transform(x_).value().AllClose(
      after.value()->Transform(x_).value(), 0));
}

TEST_F(ModelStoreTest, FailedReloadKeepsServingTheCachedModel) {
  ModelStore store(4);
  auto cached = store.Get(paths_[0]);
  ASSERT_TRUE(cached.ok());
  std::remove(paths_[0].c_str());
  const Status reload = store.Reload(paths_[0]);
  ASSERT_FALSE(reload.ok());
  EXPECT_EQ(reload.code(), StatusCode::kIoError);
  // The stale entry still serves.
  auto again = store.Get(paths_[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get(), cached.value().get());
}

TEST_F(ModelStoreTest, MissingFileIsNotCached) {
  ModelStore store(4);
  const std::string bogus = ::testing::TempDir() + "/no_such_model.mcirbm";
  EXPECT_FALSE(store.Get(bogus).ok());
  EXPECT_FALSE(store.Get(bogus).ok());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.stats().misses, 2u);
}

TEST_F(ModelStoreTest, PutServesInMemoryModels) {
  ModelStore store(4);
  auto shared = store.Put("in-memory", TrainTiny(x_, 5));
  ASSERT_NE(shared, nullptr);
  auto got = store.Get("in-memory");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().get(), shared.get());
  // No backing file, so a hot reload must fail without dropping the entry.
  EXPECT_FALSE(store.Reload("in-memory").ok());
  EXPECT_TRUE(store.Get("in-memory").ok());
  EXPECT_TRUE(store.Evict("in-memory"));
  EXPECT_FALSE(store.Evict("in-memory"));
}

TEST_F(ModelStoreTest, ConcurrentReadersAndReloads) {
  ModelStore store(2);
  constexpr int kThreads = 4;
  constexpr int kIterations = 25;
  std::vector<std::thread> readers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        auto model = store.Get(paths_[(t + i) % 2]);
        if (!model.ok() || !model.value()->valid()) ++failures[t];
      }
    });
  }
  for (int i = 0; i < kIterations; ++i) {
    ASSERT_TRUE(store.Reload(paths_[i % 2]).ok());
  }
  for (std::thread& reader : readers) reader.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);
  const ModelStore::Stats stats = store.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads * kIterations));
}

}  // namespace
}  // namespace mcirbm::serve
