// Thread-safety regression for the api::Model inference surface (the
// ModelStore shares one instance across concurrent batches, so Transform
// and Evaluate must be const and data-race-free).
//
// Audit result this test pins down: the inference path reads only the
// immutable parameter blocks (weights/biases loaded or trained before
// serving starts) and keeps all per-call state on the stack; the parallel
// kernels it enters schedule through the internally synchronized global
// ThreadPool. No mutable per-call member state exists, so concurrent
// calls must return bit-identical results — verified here, and checked
// for data races by the ThreadSanitizer CI leg.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "api/api.h"
#include "data/synthetic.h"

namespace mcirbm::api {
namespace {

TEST(ConcurrentTransformTest, ManyReadersOneModelBitIdentical) {
  data::GaussianMixtureSpec spec;
  spec.name = "concurrent";
  spec.num_classes = 2;
  spec.num_instances = 40;
  spec.num_features = 6;
  spec.separation = 6.0;
  const data::Dataset ds = data::GenerateGaussianMixture(spec, 21);

  core::PipelineConfig config;
  config.model = core::ModelKind::kGrbm;
  config.rbm.num_hidden = 5;
  config.rbm.epochs = 2;
  config.rbm.batch_size = 10;
  auto trained = Model::Train(ds.x, config, 33);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  const Model& model = trained.value();

  const linalg::Matrix reference = model.Transform(ds.x).value();
  auto eval_reference = model.Evaluate(ds.x, ds.labels);
  ASSERT_TRUE(eval_reference.ok());

  constexpr int kThreads = 4;
  constexpr int kIterations = 8;
  std::vector<std::thread> readers;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        auto features = model.Transform(ds.x);
        if (!features.ok() ||
            !features.value().AllClose(reference, 0)) {
          ++mismatches[t];
        }
        // Interleave the full Evaluate path (transform + clusterer +
        // metrics) on half the iterations.
        if (i % 2 == t % 2) {
          auto evaluated = model.Evaluate(ds.x, ds.labels);
          if (!evaluated.ok() ||
              evaluated.value().metrics.accuracy !=
                  eval_reference.value().metrics.accuracy) {
            ++mismatches[t];
          }
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0)
        << "thread " << t << " observed a divergent result";
  }
}

}  // namespace
}  // namespace mcirbm::api
