// serve::ParseRequestLine — the `mcirbm_cli serve` request vocabulary.
#include "serve/request.h"

#include <gtest/gtest.h>

namespace mcirbm::serve {
namespace {

TEST(ParseRequestLineTest, ParsesTransformRequestWithDefaults) {
  auto request = ParseRequestLine("op=transform model=m.txt data=d.csv");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().op, "transform");
  EXPECT_EQ(request.value().model, "m.txt");
  EXPECT_EQ(request.value().data, "d.csv");
  EXPECT_EQ(request.value().transform, "none");
  EXPECT_EQ(request.value().chunk, 1u);
  EXPECT_EQ(request.value().clusterer, "kmeans");
  EXPECT_EQ(request.value().k, 0);
  EXPECT_EQ(request.value().seed, 7u);
  EXPECT_TRUE(request.value().out.empty());
}

TEST(ParseRequestLineTest, ParsesEvaluateRequestWithAllKeys) {
  auto request = ParseRequestLine(
      "op=evaluate model=m.txt data=d.csv transform=standardize "
      "clusterer=dp k=3 seed=11 chunk=4 out=f.csv");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().op, "evaluate");
  EXPECT_EQ(request.value().transform, "standardize");
  EXPECT_EQ(request.value().clusterer, "dp");
  EXPECT_EQ(request.value().k, 3);
  EXPECT_EQ(request.value().seed, 11u);
  EXPECT_EQ(request.value().chunk, 4u);
  EXPECT_EQ(request.value().out, "f.csv");
}

TEST(ParseRequestLineTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("transform m.txt").ok());  // no '='
  EXPECT_FALSE(ParseRequestLine("=value").ok());
  // Unknown key, same rejection style as the CLI's unknown flags.
  auto unknown =
      ParseRequestLine("op=transform model=m data=d bogus=1");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseRequestLineTest, ParsesBareStatsRequest) {
  auto stats = ParseRequestLine("op=stats");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().op, "stats");
  EXPECT_TRUE(stats.value().model.empty());
  EXPECT_TRUE(stats.value().data.empty());
  // Surrounding whitespace is tolerated like any other request line.
  EXPECT_TRUE(ParseRequestLine("  op=stats  ").ok());
}

TEST(ParseRequestLineTest, RejectsStatsRequestWithExtraKeys) {
  // A stats probe names no model or dataset; extra keys are almost
  // certainly a mangled transform line.
  auto extra = ParseRequestLine("op=stats model=m.txt");
  ASSERT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(ParseRequestLine("op=stats data=d.csv").ok());
  EXPECT_FALSE(ParseRequestLine("op=stats seed=7").ok());
}

TEST(ParseRequestLineTest, ParsesPipeliningIdOnEveryOp) {
  // The opaque response-matching tag rides any op, including stats.
  auto transform =
      ParseRequestLine("op=transform id=c1_r42 model=m.txt data=d.csv");
  ASSERT_TRUE(transform.ok()) << transform.status().ToString();
  EXPECT_EQ(transform.value().id, "c1_r42");
  auto evaluate =
      ParseRequestLine("op=evaluate model=m data=d id=\"probe 7\"");
  ASSERT_TRUE(evaluate.ok()) << evaluate.status().ToString();
  EXPECT_EQ(evaluate.value().id, "probe 7");
  auto stats = ParseRequestLine("op=stats id=s1");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().id, "s1");
  // Untagged requests keep an empty id (FIFO responses).
  EXPECT_TRUE(
      ParseRequestLine("op=transform model=m data=d").value().id.empty());
}

TEST(ParseRequestLineTest, RejectsEmptyId) {
  // An empty echo would be indistinguishable from an untagged response,
  // so the client could never match it.
  auto empty = ParseRequestLine("op=transform id= model=m data=d");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(ParseRequestLine("op=stats id=\"\"").ok());
}

TEST(ParseRequestLineTest, RejectsUnknownOpNamingTheVocabulary) {
  auto bad = ParseRequestLine("op=status model=m data=d");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("transform|evaluate|stats"),
            std::string::npos)
      << bad.status().ToString();
}

TEST(ParseRequestLineTest, ParsesSeedsAcrossTheFullUint64Range) {
  // Regression: seed used to funnel through a 31-bit int, rejecting any
  // valid seed >= 2^31.
  auto wide = ParseRequestLine(
      "op=evaluate model=m data=d seed=2147483648");
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  EXPECT_EQ(wide.value().seed, 2147483648ull);
  auto max = ParseRequestLine(
      "op=evaluate model=m data=d seed=18446744073709551615");
  ASSERT_TRUE(max.ok()) << max.status().ToString();
  EXPECT_EQ(max.value().seed, 18446744073709551615ull);
  // Out of range / malformed seeds are rejected, not wrapped.
  EXPECT_FALSE(ParseRequestLine(
      "op=evaluate model=m data=d seed=18446744073709551616").ok());
  EXPECT_FALSE(ParseRequestLine("op=evaluate model=m data=d seed=-1").ok());
  EXPECT_FALSE(ParseRequestLine("op=evaluate model=m data=d seed=+3").ok());
  EXPECT_FALSE(ParseRequestLine("op=evaluate model=m data=d seed=1.5").ok());
}

TEST(ParseRequestLineTest, ParsesQuotedValuesWithSpaces) {
  auto request = ParseRequestLine(
      "op=transform model=\"my models/enc v2.mcirbm\" "
      "data=\"data files/my file.csv\" out=\"out dir/features.csv\"");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().model, "my models/enc v2.mcirbm");
  EXPECT_EQ(request.value().data, "data files/my file.csv");
  EXPECT_EQ(request.value().out, "out dir/features.csv");
  // Quoting is optional for values without spaces and mixes freely with
  // bare values.
  auto mixed = ParseRequestLine(
      "op=transform model=\"m.txt\" data=d.csv chunk=2");
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  EXPECT_EQ(mixed.value().model, "m.txt");
  EXPECT_EQ(mixed.value().chunk, 2u);
}

TEST(ParseRequestLineTest, RejectsUnterminatedOrMalformedQuotes) {
  auto unterminated =
      ParseRequestLine("op=transform model=m data=\"my file.csv");
  ASSERT_FALSE(unterminated.ok());
  EXPECT_EQ(unterminated.status().code(), StatusCode::kParseError);
  // Garbage immediately after the closing quote is an error, not
  // silently glued or dropped.
  EXPECT_FALSE(
      ParseRequestLine("op=transform model=m data=\"d.csv\"x").ok());
}

TEST(ParseRequestLineTest, RejectsBadValues) {
  EXPECT_FALSE(ParseRequestLine("op=delete model=m data=d").ok());
  EXPECT_FALSE(ParseRequestLine("op=transform data=d").ok());  // no model
  EXPECT_FALSE(ParseRequestLine("op=transform model=m").ok());  // no data
  EXPECT_FALSE(
      ParseRequestLine("op=transform model=m data=d chunk=0").ok());
  EXPECT_FALSE(
      ParseRequestLine("op=transform model=m data=d chunk=two").ok());
  EXPECT_FALSE(
      ParseRequestLine("op=transform model=m data=d transform=log").ok());
  EXPECT_FALSE(
      ParseRequestLine("op=evaluate model=m data=d seed=-1").ok());
}

}  // namespace
}  // namespace mcirbm::serve
