// serve::Router — replica-sharded serving: bit-parity with a single
// Server at any replica count, deterministic key-hash routing, the
// shared cross-replica ModelStore, and fail-fast admission control (a
// ThreadSanitizer target: the concurrent stress pins rejection behavior
// under TSan).
#include "serve/router.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "data/synthetic.h"

namespace mcirbm::serve {
namespace {

data::Dataset TestDataset() {
  data::GaussianMixtureSpec spec;
  spec.name = "router";
  spec.num_classes = 2;
  spec.num_instances = 32;
  spec.num_features = 6;
  spec.separation = 6.0;
  return data::GenerateGaussianMixture(spec, 21);
}

api::Model TrainTiny(const linalg::Matrix& x, std::uint64_t seed) {
  core::PipelineConfig config;
  config.model = core::ModelKind::kGrbm;
  config.rbm.num_hidden = 5;
  config.rbm.epochs = 2;
  config.rbm.batch_size = 10;
  auto model = api::Model::Train(x, config, seed);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::move(model).value();
}

linalg::Matrix RowOf(const linalg::Matrix& x, std::size_t r) {
  linalg::Matrix row(1, x.cols());
  std::memcpy(row.data(), x.data() + r * x.cols(),
              x.cols() * sizeof(double));
  return row;
}

class RouterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = TestDataset();
    path_a_ = ::testing::TempDir() + "/router_model_a.mcirbm";
    path_b_ = ::testing::TempDir() + "/router_model_b.mcirbm";
    api::Model model_a = TrainTiny(ds_.x, 33);
    api::Model model_b = TrainTiny(ds_.x, 77);
    reference_a_ = model_a.Transform(ds_.x).value();
    reference_b_ = model_b.Transform(ds_.x).value();
    ASSERT_TRUE(model_a.Save(path_a_).ok());
    ASSERT_TRUE(model_b.Save(path_b_).ok());
  }
  void TearDown() override {
    std::remove(path_a_.c_str());
    std::remove(path_b_.c_str());
  }

  data::Dataset ds_;
  std::string path_a_, path_b_;
  linalg::Matrix reference_a_, reference_b_;
};

// The tentpole guarantee: for the same request stream, a Router with any
// replica count produces feature slices byte-equal to a single Server
// (whose own parity with direct Model::Transform is already pinned).
TEST_F(RouterTest, AnyReplicaCountIsBitIdenticalToASingleServer) {
  for (const std::size_t replicas : {1u, 2u, 4u}) {
    RouterConfig config;
    config.replicas = replicas;
    config.batcher.max_batch_rows = 8;
    Router router(config);
    ASSERT_EQ(router.replicas(), replicas);
    // Interleave two models so the key-hash has something to shard.
    std::vector<std::future<StatusOr<linalg::Matrix>>> futures;
    for (std::size_t r = 0; r < ds_.x.rows(); ++r) {
      const std::string& key = (r % 2 == 0) ? path_a_ : path_b_;
      futures.push_back(router.Submit(key, RowOf(ds_.x, r)));
    }
    for (std::size_t r = 0; r < futures.size(); ++r) {
      auto slice = futures[r].get();
      ASSERT_TRUE(slice.ok()) << slice.status().ToString();
      const linalg::Matrix& reference =
          (r % 2 == 0) ? reference_a_ : reference_b_;
      EXPECT_TRUE(slice.value().AllClose(RowOf(reference, r), 0))
          << "row " << r << " diverged at " << replicas << " replicas";
    }
    const Router::Stats stats = router.stats();
    EXPECT_EQ(stats.batcher.requests, ds_.x.rows());
    EXPECT_EQ(stats.per_replica.size(), replicas);
  }
}

TEST_F(RouterTest, RoutingIsDeterministicAcrossRouterInstances) {
  RouterConfig config;
  config.replicas = 4;
  Router first(config);
  Router second(config);
  for (const std::string& key :
       {path_a_, path_b_, std::string("some/other key.mcirbm")}) {
    EXPECT_LT(first.ReplicaFor(key), 4u);
    EXPECT_EQ(first.ReplicaFor(key), second.ReplicaFor(key));
  }
  // A key always lands on the same replica within one router, too.
  EXPECT_EQ(first.ReplicaFor(path_a_), first.ReplicaFor(path_a_));
}

TEST_F(RouterTest, ReplicasShareOneModelStore) {
  RouterConfig config;
  config.replicas = 4;
  Router router(config);
  // An in-memory Put through the router's store serves whichever replica
  // the key routes to.
  router.store().Put("hot", TrainTiny(ds_.x, 33));
  auto features = router.Submit("hot", RowOf(ds_.x, 2)).get();
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_TRUE(features.value().AllClose(RowOf(reference_a_, 2), 0));
  // A disk artifact is loaded exactly once into the shared store.
  ASSERT_TRUE(router.Submit(path_a_, RowOf(ds_.x, 0)).get().ok());
  ASSERT_TRUE(router.Submit(path_a_, RowOf(ds_.x, 1)).get().ok());
  const Router::Stats stats = router.stats();
  EXPECT_EQ(stats.store.misses, 1u);
  EXPECT_GE(stats.store.hits, 1u);
}

TEST_F(RouterTest, ReloadSwapsTheArtifactForEveryReplica) {
  RouterConfig config;
  config.replicas = 2;
  Router router(config);
  auto before = router.Submit(path_a_, RowOf(ds_.x, 0)).get();
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before.value().AllClose(RowOf(reference_a_, 0), 0));
  // Overwrite the artifact on disk and hot-swap: one Reload through the
  // shared store is seen by all replicas.
  ASSERT_TRUE(TrainTiny(ds_.x, 77).Save(path_a_).ok());
  ASSERT_TRUE(router.Reload(path_a_).ok());
  auto after = router.Submit(path_a_, RowOf(ds_.x, 0)).get();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().AllClose(RowOf(reference_b_, 0), 0));
  EXPECT_EQ(router.stats().store.reloads, 1u);
}

TEST_F(RouterTest, GlobalInflightOverflowRejectsFastWithUnavailable) {
  RouterConfig config;
  config.replicas = 2;
  config.max_inflight_requests = 1;
  config.batcher.max_batch_rows = 100;          // nothing flushes by size
  config.batcher.max_queue_micros = 60'000'000;  // nor by deadline
  Router router(config);
  auto admitted = router.Submit(path_a_, RowOf(ds_.x, 0));
  EXPECT_EQ(router.inflight_requests(), 1u);
  // The second submission must fail immediately — never block, never be
  // dropped silently.
  auto rejected = router.Submit(path_b_, RowOf(ds_.x, 1));
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto rejection = rejected.get();
  ASSERT_FALSE(rejection.ok());
  EXPECT_EQ(rejection.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(router.stats().batcher.rejected_requests, 1u);
  // The admitted request is still served, and its completion frees the
  // inflight slot.
  router.Shutdown();
  auto features = admitted.get();
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_TRUE(features.value().AllClose(RowOf(reference_a_, 0), 0));
  for (int spin = 0; spin < 1000 && router.inflight_requests() != 0;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(router.inflight_requests(), 0u);
}

TEST_F(RouterTest, SubmitAfterShutdownIsUnavailable) {
  RouterConfig config;
  config.replicas = 2;
  Router router(config);
  ASSERT_TRUE(router.Submit(path_a_, RowOf(ds_.x, 0)).get().ok());
  router.Shutdown();
  auto rejected = router.Submit(path_a_, RowOf(ds_.x, 1)).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
}

// TSan target: concurrent clients against tight per-queue and global
// bounds. Every future must resolve exactly once — accepted requests
// bit-identical to the reference, rejections fail fast with kUnavailable
// — and the stats must account for every submission.
TEST_F(RouterTest, ConcurrentOverflowNeverBlocksOrDropsRequests) {
  RouterConfig config;
  config.replicas = 2;
  config.max_inflight_requests = 8;
  config.batcher.max_batch_rows = 4;
  config.batcher.max_pending_rows = 4;
  config.batcher.max_queue_micros = 200;
  Router router(config);
  constexpr int kClients = 4;
  constexpr int kPerClient = 50;
  std::vector<std::thread> clients;
  std::vector<std::uint64_t> accepted(kClients, 0);
  std::vector<std::uint64_t> rejected(kClients, 0);
  std::vector<int> errors(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Burst-submit the whole batch before draining any future, so the
      // bounds genuinely overflow, then verify every single outcome.
      std::vector<std::future<StatusOr<linalg::Matrix>>> futures;
      futures.reserve(kPerClient);
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t r =
            static_cast<std::size_t>(c * kPerClient + i) % ds_.x.rows();
        const std::string& key = (i % 2 == 0) ? path_a_ : path_b_;
        futures.push_back(router.Submit(key, RowOf(ds_.x, r)));
      }
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t r =
            static_cast<std::size_t>(c * kPerClient + i) % ds_.x.rows();
        auto result = futures[i].get();
        if (result.ok()) {
          const linalg::Matrix& reference =
              (i % 2 == 0) ? reference_a_ : reference_b_;
          if (!result.value().AllClose(RowOf(reference, r), 0)) ++errors[c];
          ++accepted[c];
        } else if (result.status().code() == StatusCode::kUnavailable) {
          ++rejected[c];
        } else {
          ++errors[c];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  std::uint64_t total_accepted = 0, total_rejected = 0;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(errors[c], 0) << "client " << c;
    total_accepted += accepted[c];
    total_rejected += rejected[c];
  }
  EXPECT_EQ(total_accepted + total_rejected,
            static_cast<std::uint64_t>(kClients) * kPerClient);
  const Router::Stats stats = router.stats();
  EXPECT_EQ(stats.batcher.requests, total_accepted);
  EXPECT_EQ(stats.batcher.rejected_requests, total_rejected);
}

// Satellite guarantee: Stats::Add merges counters by SUM, the max by
// MAX, and derived means come from summed totals — never from averaging
// per-replica means. An idle replica must not drag the aggregate mean
// down to half.
TEST(RouterStatsTest, MergeSumsCountersAndRecomputesMeansFromTotals) {
  MicroBatcher::Stats a;
  a.requests = 10;
  a.rows = 40;
  a.batches = 4;
  a.batched_rows = 40;
  a.full_flushes = 3;
  a.deadline_flushes = 1;
  a.swap_flushes = 2;
  a.rejected_requests = 5;
  a.total_queue_micros = 1000.0;
  a.max_queue_micros = 400.0;

  MicroBatcher::Stats b;
  b.requests = 30;
  b.rows = 60;
  b.batches = 2;
  b.batched_rows = 60;
  b.full_flushes = 1;
  b.deadline_flushes = 1;
  b.swap_flushes = 0;
  b.rejected_requests = 7;
  b.total_queue_micros = 9000.0;
  b.max_queue_micros = 250.0;

  MicroBatcher::Stats merged = a;
  merged.Add(b);
  EXPECT_EQ(merged.requests, 40u);
  EXPECT_EQ(merged.rows, 100u);
  EXPECT_EQ(merged.batches, 6u);
  EXPECT_EQ(merged.batched_rows, 100u);
  EXPECT_EQ(merged.full_flushes, 4u);
  EXPECT_EQ(merged.deadline_flushes, 2u);
  EXPECT_EQ(merged.swap_flushes, 2u);
  EXPECT_EQ(merged.rejected_requests, 12u);
  EXPECT_DOUBLE_EQ(merged.total_queue_micros, 10000.0);
  // Max of maxes, not sum.
  EXPECT_DOUBLE_EQ(merged.max_queue_micros, 400.0);
  // Mean from summed totals: 10000 / 40 = 250. Averaging the per-part
  // means ((100 + 300) / 2 = 200) would be wrong — the busier replica
  // must carry more weight.
  EXPECT_DOUBLE_EQ(merged.MeanQueueMicros(), 250.0);
  EXPECT_DOUBLE_EQ(merged.MeanBatchRows(), 100.0 / 6.0);
  // Merging an empty Stats is the identity.
  MicroBatcher::Stats with_idle = merged;
  with_idle.Add(MicroBatcher::Stats{});
  EXPECT_EQ(with_idle.requests, merged.requests);
  EXPECT_DOUBLE_EQ(with_idle.MeanQueueMicros(), merged.MeanQueueMicros());
}

// The tentpole routing guarantee: per-key results under kLeastLoaded are
// bit-identical to kKeyHash (and to the direct Model::Transform
// reference) at every replica count — routing moves queueing around,
// never results.
TEST_F(RouterTest, LeastLoadedRoutingIsBitIdenticalToKeyHash) {
  for (const std::size_t replicas : {1u, 2u, 4u}) {
    RouterConfig config;
    config.replicas = replicas;
    config.routing = RoutingMode::kLeastLoaded;
    config.batcher.max_batch_rows = 8;
    Router router(config);
    std::vector<std::future<StatusOr<linalg::Matrix>>> futures;
    for (std::size_t r = 0; r < ds_.x.rows(); ++r) {
      const std::string& key = (r % 2 == 0) ? path_a_ : path_b_;
      futures.push_back(router.Submit(key, RowOf(ds_.x, r)));
    }
    for (std::size_t r = 0; r < futures.size(); ++r) {
      auto slice = futures[r].get();
      ASSERT_TRUE(slice.ok()) << slice.status().ToString();
      const linalg::Matrix& reference =
          (r % 2 == 0) ? reference_a_ : reference_b_;
      EXPECT_TRUE(slice.value().AllClose(RowOf(reference, r), 0))
          << "row " << r << " diverged at " << replicas
          << " least-loaded replicas";
    }
    const Router::Stats stats = router.stats();
    EXPECT_EQ(stats.batcher.requests, ds_.x.rows());
  }
}

TEST_F(RouterTest, LeastLoadedPinsBusyKeysAndSpreadsIdleOnes) {
  RouterConfig config;
  config.replicas = 2;
  config.routing = RoutingMode::kLeastLoaded;
  config.batcher.max_batch_rows = 100;           // nothing flushes by size
  config.batcher.max_queue_micros = 60'000'000;  // nor by deadline
  Router router(config);
  router.store().Put("busy", TrainTiny(ds_.x, 33));
  router.store().Put("idle", TrainTiny(ds_.x, 33));

  // First submission for a key lands on its hash replica (all loads 0).
  const std::size_t pinned = router.RouteFor("busy");
  EXPECT_EQ(pinned, router.ReplicaFor("busy"));
  auto held = router.Submit("busy", RowOf(ds_.x, 0));
  // While its rows are queued, the key stays pinned even though its
  // replica is now the MORE loaded one.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(router.RouteFor("busy"), pinned);
  }
  // An idle key avoids the loaded replica, whatever its hash says.
  EXPECT_EQ(router.RouteFor("idle"), 1 - pinned);

  router.Shutdown();  // flushes the held batch
  auto features = held.get();
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_TRUE(features.value().AllClose(RowOf(reference_a_, 0), 0));
  // Drained, the pin expires: the key re-resolves by load again.
  EXPECT_LT(router.RouteFor("busy"), 2u);
}

// TSan target: concurrent clients under kLeastLoaded — the routing table
// and load gauges race with the flusher threads. Every result must stay
// bit-identical to the reference.
TEST_F(RouterTest, ConcurrentLeastLoadedStaysBitIdentical) {
  RouterConfig config;
  config.replicas = 4;
  config.routing = RoutingMode::kLeastLoaded;
  config.batcher.max_batch_rows = 4;
  config.batcher.max_queue_micros = 200;
  Router router(config);
  constexpr int kClients = 4;
  constexpr int kPerClient = 40;
  std::vector<std::thread> clients;
  std::vector<int> errors(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<StatusOr<linalg::Matrix>>> futures;
      futures.reserve(kPerClient);
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t r =
            static_cast<std::size_t>(c * kPerClient + i) % ds_.x.rows();
        const std::string& key = (i % 2 == 0) ? path_a_ : path_b_;
        futures.push_back(router.Submit(key, RowOf(ds_.x, r)));
      }
      for (int i = 0; i < kPerClient; ++i) {
        const std::size_t r =
            static_cast<std::size_t>(c * kPerClient + i) % ds_.x.rows();
        auto result = futures[i].get();
        if (!result.ok()) {
          ++errors[c];
          continue;
        }
        const linalg::Matrix& reference =
            (i % 2 == 0) ? reference_a_ : reference_b_;
        if (!result.value().AllClose(RowOf(reference, r), 0)) ++errors[c];
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(errors[c], 0) << "client " << c;
  }
  EXPECT_EQ(router.stats().batcher.requests,
            static_cast<std::uint64_t>(kClients) * kPerClient);
}

TEST_F(RouterTest, MetricsSnapshotMergesReplicasAndStoreOnce) {
  RouterConfig config;
  config.replicas = 2;
  Router router(config);
  ASSERT_TRUE(router.Submit(path_a_, RowOf(ds_.x, 0)).get().ok());
  ASSERT_TRUE(router.Submit(path_b_, RowOf(ds_.x, 1)).get().ok());
  const obs::MetricsSnapshot snap = router.metrics_snapshot();
  // Per-key request counters from (possibly different) replicas both
  // appear in the merged view.
  EXPECT_EQ((snap.counters.at({"serve_requests_total", path_a_})), 1u);
  EXPECT_EQ((snap.counters.at({"serve_requests_total", path_b_})), 1u);
  // The shared store is folded in exactly once: two distinct artifacts,
  // two misses — not 2 * replicas.
  EXPECT_EQ((snap.counters.at({"store_misses_total", ""})), 2u);
  // Router-level gauges ride along.
  EXPECT_DOUBLE_EQ((snap.gauges.at({"serve_replicas", ""})), 2.0);
  // Queue-wait histograms recorded one observation per request.
  std::uint64_t waits = 0;
  for (const auto& [key, h] : snap.histograms) {
    if (key.first == "serve_queue_wait_micros") waits += h.count;
  }
  EXPECT_EQ(waits, 2u);
  // All drained: the merged pending-rows gauges read 0.
  for (const auto& [key, value] : snap.gauges) {
    if (key.first == "serve_pending_rows") {
      EXPECT_DOUBLE_EQ(value, 0.0) << key.second;
    }
  }
  // The rendered text is grep-able Prometheus form.
  const std::string text = router.RenderStatsText();
  EXPECT_NE(text.find("serve_replicas 2"), std::string::npos) << text;
}

}  // namespace
}  // namespace mcirbm::serve
