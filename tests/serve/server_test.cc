// serve::Server — end-to-end serving over saved artifacts: submission by
// model path, evaluate parity, stats, hot reload, shutdown semantics, and
// concurrent clients (a ThreadSanitizer target).
#include "serve/server.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/api.h"
#include "data/synthetic.h"

namespace mcirbm::serve {
namespace {

data::Dataset TestDataset() {
  data::GaussianMixtureSpec spec;
  spec.name = "server";
  spec.num_classes = 2;
  spec.num_instances = 32;
  spec.num_features = 6;
  spec.separation = 6.0;
  return data::GenerateGaussianMixture(spec, 21);
}

linalg::Matrix RowOf(const linalg::Matrix& x, std::size_t r) {
  linalg::Matrix row(1, x.cols());
  std::memcpy(row.data(), x.data() + r * x.cols(),
              x.cols() * sizeof(double));
  return row;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = TestDataset();
    path_ = ::testing::TempDir() + "/server_model.mcirbm";
    core::PipelineConfig config;
    config.model = core::ModelKind::kGrbm;
    config.rbm.num_hidden = 5;
    config.rbm.epochs = 2;
    config.rbm.batch_size = 10;
    auto model = api::Model::Train(ds_.x, config, 33);
    ASSERT_TRUE(model.ok()) << model.status().ToString();
    ASSERT_TRUE(model.value().Save(path_).ok());
    reference_ = model.value().Transform(ds_.x).value();
  }
  void TearDown() override { std::remove(path_.c_str()); }

  data::Dataset ds_;
  std::string path_;
  linalg::Matrix reference_;
};

TEST_F(ServerTest, ServesRowRequestsByModelPath) {
  Server server;
  std::vector<std::future<StatusOr<linalg::Matrix>>> futures;
  for (std::size_t r = 0; r < ds_.x.rows(); ++r) {
    futures.push_back(server.Submit(path_, RowOf(ds_.x, r)));
  }
  for (std::size_t r = 0; r < futures.size(); ++r) {
    auto slice = futures[r].get();
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    EXPECT_TRUE(slice.value().AllClose(RowOf(reference_, r), 0))
        << "row " << r;
  }
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.batcher.requests, ds_.x.rows());
  EXPECT_GE(stats.batcher.batches, 1u);
  // One disk load, every later submission a cache hit.
  EXPECT_EQ(stats.store.misses, 1u);
  EXPECT_EQ(stats.store.hits, ds_.x.rows() - 1);
}

TEST_F(ServerTest, EvaluateMatchesDirectModelEvaluate) {
  auto model = api::Model::Load(path_);
  ASSERT_TRUE(model.ok());
  auto reference = model.value().Evaluate(ds_.x, ds_.labels);
  ASSERT_TRUE(reference.ok());

  Server server;
  auto result = server.SubmitEvaluate(path_, ds_.x, ds_.labels).get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().clusters_found,
            reference.value().clusters_found);
  EXPECT_DOUBLE_EQ(result.value().metrics.accuracy,
                   reference.value().metrics.accuracy);
  EXPECT_DOUBLE_EQ(result.value().metrics.nmi,
                   reference.value().metrics.nmi);
}

TEST_F(ServerTest, UnknownModelFailsFast) {
  Server server;
  auto missing =
      server.Submit(::testing::TempDir() + "/nope.mcirbm", RowOf(ds_.x, 0));
  auto result = missing.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(ServerTest, SubmitAfterShutdownIsUnavailable) {
  Server server;
  ASSERT_TRUE(server.Submit(path_, RowOf(ds_.x, 0)).get().ok());
  server.Shutdown();
  auto rejected = server.Submit(path_, RowOf(ds_.x, 1)).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
}

TEST_F(ServerTest, ReloadKeepsServingIdenticalArtifact) {
  Server server;
  ASSERT_TRUE(server.Submit(path_, RowOf(ds_.x, 0)).get().ok());
  ASSERT_TRUE(server.Reload(path_).ok());
  auto features = server.Submit(path_, RowOf(ds_.x, 1)).get();
  ASSERT_TRUE(features.ok());
  EXPECT_TRUE(features.value().AllClose(RowOf(reference_, 1), 0));
  EXPECT_EQ(server.stats().store.reloads, 1u);
}

TEST_F(ServerTest, ReloadThenShutdownResolvesQueuedAndFreshExactlyOnce) {
  // Hot swap racing shutdown: a request queued against the old instance,
  // a Reload that swaps the artifact, a request on the new instance
  // (sealing the old queue), then an immediate Shutdown. Both futures
  // must resolve exactly once, each on the instance it was submitted
  // against.
  ServerConfig config;
  config.batcher.max_batch_rows = 100;           // only Shutdown flushes
  config.batcher.max_queue_micros = 60'000'000;
  Server server(config);
  auto queued = server.Submit(path_, RowOf(ds_.x, 0));
  // Replace the artifact on disk with a differently-seeded model so the
  // two instances are distinguishable by their outputs.
  core::PipelineConfig model_config;
  model_config.model = core::ModelKind::kGrbm;
  model_config.rbm.num_hidden = 5;
  model_config.rbm.epochs = 2;
  model_config.rbm.batch_size = 10;
  auto swapped = api::Model::Train(ds_.x, model_config, 77);
  ASSERT_TRUE(swapped.ok());
  const linalg::Matrix swapped_reference =
      swapped.value().Transform(ds_.x).value();
  ASSERT_TRUE(swapped.value().Save(path_).ok());
  ASSERT_TRUE(server.Reload(path_).ok());
  auto fresh = server.Submit(path_, RowOf(ds_.x, 1));
  server.Shutdown();
  auto old_features = queued.get();
  ASSERT_TRUE(old_features.ok()) << old_features.status().ToString();
  EXPECT_TRUE(old_features.value().AllClose(RowOf(reference_, 0), 0));
  auto new_features = fresh.get();
  ASSERT_TRUE(new_features.ok()) << new_features.status().ToString();
  EXPECT_TRUE(new_features.value().AllClose(RowOf(swapped_reference, 1), 0));
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.batcher.batches, 2u);
  EXPECT_EQ(stats.batcher.swap_flushes, 1u);
}

TEST_F(ServerTest, ServesInMemoryModelsViaStorePut) {
  Server server;
  auto model = api::Model::Load(path_);
  ASSERT_TRUE(model.ok());
  server.store().Put("hot", std::move(model).value());
  auto features = server.Submit("hot", RowOf(ds_.x, 2)).get();
  ASSERT_TRUE(features.ok());
  EXPECT_TRUE(features.value().AllClose(RowOf(reference_, 2), 0));
}

TEST_F(ServerTest, ConcurrentClientsGetBitIdenticalRows) {
  ServerConfig config;
  config.batcher.max_batch_rows = 8;
  Server server(config);
  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::vector<std::thread> clients;
  std::vector<int> mismatches(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::future<StatusOr<linalg::Matrix>>> futures;
        for (std::size_t r = c; r < ds_.x.rows();
             r += static_cast<std::size_t>(kClients)) {
          futures.push_back(server.Submit(path_, RowOf(ds_.x, r)));
        }
        std::size_t r = c;
        for (auto& future : futures) {
          auto slice = future.get();
          if (!slice.ok() ||
              !slice.value().AllClose(RowOf(reference_, r), 0)) {
            ++mismatches[c];
          }
          r += kClients;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(mismatches[c], 0);
  const Server::Stats stats = server.stats();
  EXPECT_EQ(stats.batcher.requests,
            static_cast<std::uint64_t>(kClients * kRounds) *
                (ds_.x.rows() / kClients));
}

}  // namespace
}  // namespace mcirbm::serve
