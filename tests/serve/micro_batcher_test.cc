// serve::MicroBatcher — coalescing edge cases and the bit-parity
// guarantee: batched serving output equals one-at-a-time Transform calls.
#include "serve/micro_batcher.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/api.h"
#include "data/synthetic.h"

namespace mcirbm::serve {
namespace {

data::Dataset TestDataset(int instances = 32) {
  data::GaussianMixtureSpec spec;
  spec.name = "batcher";
  spec.num_classes = 2;
  spec.num_instances = instances;
  spec.num_features = 6;
  spec.separation = 6.0;
  return data::GenerateGaussianMixture(spec, 21);
}

std::shared_ptr<const api::Model> TrainShared(
    const linalg::Matrix& x, core::ModelKind kind, std::uint64_t seed) {
  core::PipelineConfig config;
  config.model = kind;
  config.rbm.num_hidden = 5;
  config.rbm.epochs = 2;
  config.rbm.batch_size = 10;
  config.supervision.num_clusters = 2;
  auto model = api::Model::Train(x, config, seed);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return std::make_shared<const api::Model>(std::move(model).value());
}

/// Extracts row `r` of `x` as a 1 x cols matrix.
linalg::Matrix RowOf(const linalg::Matrix& x, std::size_t r) {
  linalg::Matrix row(1, x.cols());
  std::memcpy(row.data(), x.data() + r * x.cols(),
              x.cols() * sizeof(double));
  return row;
}

class MicroBatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = TestDataset();
    model_ = TrainShared(ds_.x, core::ModelKind::kGrbm, 33);
  }

  data::Dataset ds_;
  std::shared_ptr<const api::Model> model_;
};

TEST_F(MicroBatcherTest, SingleRequestFlushesOnDeadline) {
  BatcherConfig config;
  config.max_batch_rows = 100;  // never reached
  config.max_queue_micros = 500;
  MicroBatcher batcher(config);
  auto future = batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 0));
  auto features = future.get();
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_TRUE(features.value().AllClose(
      model_->Transform(RowOf(ds_.x, 0)).value(), 0));
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.deadline_flushes, 1u);
  EXPECT_EQ(stats.full_flushes, 0u);
}

TEST_F(MicroBatcherTest, MaxBatchRowsBoundaryFlushesExactlyFull) {
  BatcherConfig config;
  config.max_batch_rows = 4;
  config.max_queue_micros = 60'000'000;  // only the row cap can flush
  MicroBatcher batcher(config);
  // 3 rows stay pending; the 4th hits the boundary exactly.
  std::vector<std::future<StatusOr<linalg::Matrix>>> futures;
  linalg::Matrix three(3, ds_.x.cols());
  std::memcpy(three.data(), ds_.x.data(), three.size() * sizeof(double));
  futures.push_back(batcher.SubmitTransform(model_, "m", std::move(three)));
  futures.push_back(batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 3)));
  for (auto& future : futures) {
    auto features = future.get();
    ASSERT_TRUE(features.ok()) << features.status().ToString();
  }
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_rows, 4u);
  EXPECT_EQ(stats.full_flushes, 1u);
  EXPECT_EQ(stats.deadline_flushes, 0u);
  batcher.Shutdown();
}

TEST_F(MicroBatcherTest, OversizedRequestFormsOneBatch) {
  BatcherConfig config;
  config.max_batch_rows = 4;
  config.max_queue_micros = 60'000'000;
  MicroBatcher batcher(config);
  linalg::Matrix all = ds_.x;  // 32 rows >> max_batch_rows
  auto features = batcher.SubmitTransform(model_, "m", std::move(all)).get();
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_TRUE(features.value().AllClose(model_->Transform(ds_.x).value(), 0));
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_rows, ds_.x.rows());
  EXPECT_EQ(stats.full_flushes, 1u);
}

TEST_F(MicroBatcherTest, MixedModelQueuesNeverShareABatch) {
  // A second model with a different seed: same shapes, different weights.
  auto other = TrainShared(ds_.x, core::ModelKind::kGrbm, 77);
  BatcherConfig config;
  config.max_batch_rows = 2;
  config.max_queue_micros = 60'000'000;
  MicroBatcher batcher(config);
  auto a0 = batcher.SubmitTransform(model_, "a", RowOf(ds_.x, 0));
  auto b0 = batcher.SubmitTransform(other, "b", RowOf(ds_.x, 0));
  auto a1 = batcher.SubmitTransform(model_, "a", RowOf(ds_.x, 1));
  auto b1 = batcher.SubmitTransform(other, "b", RowOf(ds_.x, 1));
  // Each queue filled to its 2-row cap independently.
  EXPECT_TRUE(a0.get().value().AllClose(
      model_->Transform(RowOf(ds_.x, 0)).value(), 0));
  EXPECT_TRUE(a1.get().value().AllClose(
      model_->Transform(RowOf(ds_.x, 1)).value(), 0));
  EXPECT_TRUE(b0.get().value().AllClose(
      other->Transform(RowOf(ds_.x, 0)).value(), 0));
  EXPECT_TRUE(b1.get().value().AllClose(
      other->Transform(RowOf(ds_.x, 1)).value(), 0));
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.full_flushes, 2u);
  EXPECT_EQ(stats.batched_rows, 4u);
}

TEST_F(MicroBatcherTest, ModelSwapMidQueueSealsTheOldBatch) {
  // Hot reload swaps the instance behind a key while requests are still
  // queued: earlier requests must finish on the instance they were
  // submitted against, later ones on the new instance — never mixed.
  auto other = TrainShared(ds_.x, core::ModelKind::kGrbm, 77);
  BatcherConfig config;
  config.max_batch_rows = 100;          // nothing flushes by row count
  config.max_queue_micros = 60'000'000;  // nor by deadline
  MicroBatcher batcher(config);
  auto old_instance =
      batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 0));
  auto new_instance =
      batcher.SubmitTransform(other, "m", RowOf(ds_.x, 0));
  // The sealed old-instance batch flushes immediately; the new queue
  // drains on Shutdown.
  auto old_features = old_instance.get();
  ASSERT_TRUE(old_features.ok());
  EXPECT_TRUE(old_features.value().AllClose(
      model_->Transform(RowOf(ds_.x, 0)).value(), 0));
  batcher.Shutdown();
  auto new_features = new_instance.get();
  ASSERT_TRUE(new_features.ok());
  EXPECT_TRUE(new_features.value().AllClose(
      other->Transform(RowOf(ds_.x, 0)).value(), 0));
  EXPECT_EQ(batcher.stats().batches, 2u);
}

TEST_F(MicroBatcherTest, SwapFlushIsAttributedAsSwapNotDeadline) {
  // Regression: batches sealed by a mid-queue hot swap hit neither the
  // size cap nor the deadline and used to be miscounted as
  // deadline_flushes.
  auto other = TrainShared(ds_.x, core::ModelKind::kGrbm, 77);
  BatcherConfig config;
  config.max_batch_rows = 100;           // nothing flushes by row count
  config.max_queue_micros = 60'000'000;  // nor by deadline
  MicroBatcher batcher(config);
  auto old_instance = batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 0));
  auto new_instance = batcher.SubmitTransform(other, "m", RowOf(ds_.x, 1));
  ASSERT_TRUE(old_instance.get().ok());  // sealed batch flushes at once
  batcher.Shutdown();                    // fresh queue drains on shutdown
  ASSERT_TRUE(new_instance.get().ok());
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.swap_flushes, 1u);
  EXPECT_EQ(stats.deadline_flushes, 1u);  // only the shutdown drain
  EXPECT_EQ(stats.full_flushes, 0u);
}

TEST_F(MicroBatcherTest, OversizedSealedQueueIsSplitToRespectTheCap) {
  // Regression: a sealed queue used to flush as ONE batch even when its
  // pending rows exceeded max_batch_rows. Park the flusher inside a long
  // pass on another key, pile up 6 rows (cap 4) behind it, then hot-swap:
  // the seal must produce two capped batches, not one 6-row pass.
  auto other = TrainShared(ds_.x, core::ModelKind::kGrbm, 77);
  BatcherConfig config;
  config.max_batch_rows = 4;
  config.max_queue_micros = 60'000'000;
  MicroBatcher batcher(config);
  // A 20000-row oversized request: admitted whole, flushed immediately
  // as one full batch the flusher spends a long time executing.
  linalg::Matrix big(20000, ds_.x.cols());
  for (std::size_t r = 0; r < big.rows(); ++r) {
    std::memcpy(big.data() + r * big.cols(),
                ds_.x.data() + (r % ds_.x.rows()) * ds_.x.cols(),
                big.cols() * sizeof(double));
  }
  auto slow = batcher.SubmitTransform(model_, "slow", std::move(big));
  // Wait until the flusher has detached the slow batch for execution.
  while (batcher.pending_queues() != 0) {
    std::this_thread::yield();
  }
  // 3 + 3 pending rows on "m" (> cap; the flusher is busy), then swap.
  linalg::Matrix first(3, ds_.x.cols());
  std::memcpy(first.data(), ds_.x.data(), first.size() * sizeof(double));
  linalg::Matrix second(3, ds_.x.cols());
  std::memcpy(second.data(), ds_.x.data() + 3 * ds_.x.cols(),
              second.size() * sizeof(double));
  auto a = batcher.SubmitTransform(model_, "m", std::move(first));
  auto b = batcher.SubmitTransform(model_, "m", std::move(second));
  auto c = batcher.SubmitTransform(other, "m", RowOf(ds_.x, 6));
  ASSERT_TRUE(slow.get().ok());
  ASSERT_TRUE(a.get().ok());
  ASSERT_TRUE(b.get().ok());
  batcher.Shutdown();
  ASSERT_TRUE(c.get().ok());
  const MicroBatcher::Stats stats = batcher.stats();
  // slow (full) + the two 3-row requests as two capped batches (sealed
  // by the swap in the expected interleaving; as regular full flushes in
  // the unlikely one where the flusher finishes the slow pass first —
  // either way the 6 rows must NOT form one over-cap batch, which would
  // make this 3 batches) + the fresh queue's shutdown drain.
  EXPECT_EQ(stats.batches, 4u);
  EXPECT_EQ(stats.full_flushes + stats.swap_flushes, 3u);
  EXPECT_EQ(stats.deadline_flushes, 1u);
  EXPECT_EQ(stats.batched_rows, 20000u + 7u);
}

TEST_F(MicroBatcherTest, PerQueueOverflowRejectsFastWithUnavailable) {
  BatcherConfig config;
  config.max_batch_rows = 100;
  config.max_queue_micros = 60'000'000;
  config.max_pending_rows = 1;
  MicroBatcher batcher(config);
  auto admitted = batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 0));
  // Queue full: the next submission must resolve immediately (never
  // block) with kUnavailable.
  auto rejected = batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 1));
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto rejection = rejected.get();
  ASSERT_FALSE(rejection.ok());
  EXPECT_EQ(rejection.status().code(), StatusCode::kUnavailable);
  // Another key is unaffected by "m"'s backpressure (both pending
  // requests drain on Shutdown — nothing else can flush them here).
  auto elsewhere = batcher.SubmitTransform(model_, "other", RowOf(ds_.x, 2));
  batcher.Shutdown();
  ASSERT_TRUE(elsewhere.get().ok());
  ASSERT_TRUE(admitted.get().ok());
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.rejected_requests, 1u);
  EXPECT_EQ(stats.requests, 2u);  // rejected submissions are not counted
}

TEST_F(MicroBatcherTest, SealedRowsStillCountAgainstTheBackpressureBound) {
  // Regression: rows sealed into a swap batch used to vanish from the
  // max_pending_rows accounting, so a Reload-heavy client could grow
  // sealed work without bound. Park the flusher on a long pass so the
  // sealed batch cannot be claimed, then verify the bound still holds.
  auto other = TrainShared(ds_.x, core::ModelKind::kGrbm, 77);
  BatcherConfig config;
  config.max_batch_rows = 100;
  config.max_queue_micros = 60'000'000;
  config.max_pending_rows = 4;
  MicroBatcher batcher(config);
  linalg::Matrix big(20000, ds_.x.cols());
  for (std::size_t r = 0; r < big.rows(); ++r) {
    std::memcpy(big.data() + r * big.cols(),
                ds_.x.data() + (r % ds_.x.rows()) * ds_.x.cols(),
                big.cols() * sizeof(double));
  }
  auto slow = batcher.SubmitTransform(model_, "slow", std::move(big));
  while (batcher.pending_queues() != 0) {
    std::this_thread::yield();
  }
  // 3 rows pending on the old instance, swap-sealed by a 1-row submit on
  // the new one: 3 sealed + 1 pending rows now held against the bound.
  linalg::Matrix three(3, ds_.x.cols());
  std::memcpy(three.data(), ds_.x.data(), three.size() * sizeof(double));
  auto old_rows = batcher.SubmitTransform(model_, "m", std::move(three));
  auto fresh = batcher.SubmitTransform(other, "m", RowOf(ds_.x, 3));
  auto overflow = batcher.SubmitTransform(other, "m", RowOf(ds_.x, 4));
  if (overflow.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready) {
    // Admission is only legitimate if the flusher won the (tiny) race
    // and claimed the sealed batch first, releasing its rows. The claim
    // and its swap_flushes increment happen under the batcher lock
    // before any later Enqueue, so a zero counter here means the rows
    // were still held — i.e. the bound was bypassed.
    EXPECT_GE(batcher.stats().swap_flushes, 1u)
        << "submission admitted while sealed rows were still held";
    GTEST_SKIP() << "flusher claimed the sealed batch first";
  }
  auto rejection = overflow.get();
  ASSERT_FALSE(rejection.ok());
  EXPECT_EQ(rejection.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(batcher.stats().rejected_requests, 1u);
  batcher.Shutdown();
  ASSERT_TRUE(slow.get().ok());
  ASSERT_TRUE(old_rows.get().ok());
  ASSERT_TRUE(fresh.get().ok());
}

TEST_F(MicroBatcherTest, RejectedSubmissionLeavesNoEmptyQueueBehind) {
  // Regression: a global-admission rejection on a never-seen key must
  // not leak an empty Queue entry for the flusher to scan forever.
  BatcherConfig config;
  config.max_batch_rows = 100;
  config.max_queue_micros = 60'000'000;
  config.admission = std::make_shared<AdmissionController>(1);
  MicroBatcher batcher(config);
  auto admitted = batcher.SubmitTransform(model_, "a", RowOf(ds_.x, 0));
  auto rejected =
      batcher.SubmitTransform(model_, "fresh-key", RowOf(ds_.x, 1)).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(batcher.pending_queues(), 1u);  // only "a" — no "fresh-key"
  batcher.Shutdown();
  ASSERT_TRUE(admitted.get().ok());
  EXPECT_EQ(batcher.stats().rejected_requests, 1u);
}

TEST_F(MicroBatcherTest, OversizedFirstRequestIsAlwaysAdmitted) {
  BatcherConfig config;
  config.max_pending_rows = 2;
  MicroBatcher batcher(config);
  linalg::Matrix all = ds_.x;  // 32 rows >> max_pending_rows
  auto features = batcher.SubmitTransform(model_, "m", std::move(all)).get();
  ASSERT_TRUE(features.ok()) << features.status().ToString();
  EXPECT_EQ(batcher.stats().rejected_requests, 0u);
}

TEST_F(MicroBatcherTest, ReloadThenShutdownResolvesEveryFutureExactlyOnce) {
  // Interleaving from the issue: a hot swap immediately followed by
  // Shutdown. The sealed old-instance batch and the fresh queue must
  // both flush — every pending future resolves exactly once, on the
  // instance it was submitted against. (A double resolution would abort
  // on the promise; an abandoned one would hang the .get() forever.)
  auto other = TrainShared(ds_.x, core::ModelKind::kGrbm, 77);
  BatcherConfig config;
  config.max_batch_rows = 100;
  config.max_queue_micros = 60'000'000;
  MicroBatcher batcher(config);
  auto old_instance = batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 0));
  auto new_instance = batcher.SubmitTransform(other, "m", RowOf(ds_.x, 1));
  batcher.Shutdown();  // immediately — no wait for the sealed flush
  auto old_features = old_instance.get();
  ASSERT_TRUE(old_features.ok()) << old_features.status().ToString();
  EXPECT_TRUE(old_features.value().AllClose(
      model_->Transform(RowOf(ds_.x, 0)).value(), 0));
  auto new_features = new_instance.get();
  ASSERT_TRUE(new_features.ok()) << new_features.status().ToString();
  EXPECT_TRUE(new_features.value().AllClose(
      other->Transform(RowOf(ds_.x, 1)).value(), 0));
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.batched_rows, 2u);
  EXPECT_EQ(stats.swap_flushes, 1u);
}

TEST_F(MicroBatcherTest, DrainedQueuesAreDropped) {
  // A long-lived server sees many distinct keys; drained queues must not
  // accumulate (each would pin its model shared_ptr and grow the
  // per-wakeup scan).
  BatcherConfig config;
  config.max_batch_rows = 1;
  MicroBatcher batcher(config);
  for (int i = 0; i < 3; ++i) {
    auto features = batcher
                        .SubmitTransform(model_, "key" + std::to_string(i),
                                         RowOf(ds_.x, 0))
                        .get();
    ASSERT_TRUE(features.ok());
  }
  EXPECT_EQ(batcher.pending_queues(), 0u);
}

TEST_F(MicroBatcherTest, ShutdownWithEmptyQueueIsClean) {
  MicroBatcher batcher;
  batcher.Shutdown();
  batcher.Shutdown();  // idempotent
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.requests, 0u);
  EXPECT_EQ(stats.batches, 0u);
}

TEST_F(MicroBatcherTest, ShutdownFlushesPendingRequests) {
  BatcherConfig config;
  config.max_batch_rows = 100;
  config.max_queue_micros = 60'000'000;  // no flush before Shutdown
  MicroBatcher batcher(config);
  auto first = batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 0));
  auto second = batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 1));
  batcher.Shutdown();
  // Pending work was completed, not abandoned.
  ASSERT_TRUE(first.get().ok());
  auto features = second.get();
  ASSERT_TRUE(features.ok());
  EXPECT_TRUE(features.value().AllClose(
      model_->Transform(RowOf(ds_.x, 1)).value(), 0));
  EXPECT_EQ(batcher.stats().batches, 1u);
}

TEST_F(MicroBatcherTest, SubmitAfterShutdownIsUnavailable) {
  MicroBatcher batcher;
  batcher.Shutdown();
  auto transform = batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 0));
  auto transform_result = transform.get();
  ASSERT_FALSE(transform_result.ok());
  EXPECT_EQ(transform_result.status().code(), StatusCode::kUnavailable);
  auto evaluate =
      batcher.SubmitEvaluate(model_, "m", ds_.x, ds_.labels).get();
  ASSERT_FALSE(evaluate.ok());
  EXPECT_EQ(evaluate.status().code(), StatusCode::kUnavailable);
}

TEST_F(MicroBatcherTest, BadRequestsFailFastWithoutQueueing) {
  MicroBatcher batcher;
  // Wrong width.
  auto narrow =
      batcher.SubmitTransform(model_, "m",
                              linalg::Matrix(1, ds_.x.cols() - 1)).get();
  ASSERT_FALSE(narrow.ok());
  EXPECT_EQ(narrow.status().code(), StatusCode::kInvalidArgument);
  // Empty request.
  auto empty = batcher.SubmitTransform(model_, "m", linalg::Matrix()).get();
  EXPECT_FALSE(empty.ok());
  // Missing model.
  auto orphan =
      batcher.SubmitTransform(nullptr, "m", RowOf(ds_.x, 0)).get();
  EXPECT_FALSE(orphan.ok());
  // Label/row mismatch on evaluate.
  auto mismatched =
      batcher.SubmitEvaluate(model_, "m", RowOf(ds_.x, 0), ds_.labels)
          .get();
  EXPECT_FALSE(mismatched.ok());
  EXPECT_EQ(batcher.stats().requests, 0u);
}

TEST_F(MicroBatcherTest, RecordsLatenciesWhenEnabled) {
  BatcherConfig config;
  config.max_batch_rows = 2;
  config.record_latencies = true;
  MicroBatcher batcher(config);
  auto a = batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 0));
  auto b = batcher.SubmitTransform(model_, "m", RowOf(ds_.x, 1));
  ASSERT_TRUE(a.get().ok());
  ASSERT_TRUE(b.get().ok());
  EXPECT_EQ(batcher.latencies_micros().size(), 2u);
  EXPECT_GE(batcher.stats().max_queue_micros, 0.0);
}

// Bit-parity for every model kind: rows submitted one at a time through
// the batcher, coalesced into batched passes, must reproduce the direct
// Model::Transform / Evaluate results exactly.
class BatchParityTest : public ::testing::TestWithParam<core::ModelKind> {};

TEST_P(BatchParityTest, BatchedTransformMatchesSequentialBitForBit) {
  const data::Dataset ds = TestDataset(24);
  auto model = TrainShared(ds.x, GetParam(), 33);
  const linalg::Matrix reference = model->Transform(ds.x).value();

  BatcherConfig config;
  config.max_batch_rows = 8;
  // Generous deadline: rows coalesce into full batches even when a
  // sanitizer or a loaded CI machine slows submission down.
  config.max_queue_micros = 50'000;
  MicroBatcher batcher(config);
  std::vector<std::future<StatusOr<linalg::Matrix>>> futures;
  for (std::size_t r = 0; r < ds.x.rows(); ++r) {
    futures.push_back(batcher.SubmitTransform(model, "m", RowOf(ds.x, r)));
  }
  for (std::size_t r = 0; r < futures.size(); ++r) {
    auto slice = futures[r].get();
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    ASSERT_EQ(slice.value().rows(), 1u);
    ASSERT_EQ(slice.value().cols(), reference.cols());
    // AllClose with tol 0 is exact bit equality up to ±0.0/NaN, which the
    // sigmoid never produces.
    EXPECT_TRUE(slice.value().AllClose(RowOf(reference, r), 0))
        << "row " << r << " diverged from the sequential transform";
  }
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.requests, ds.x.rows());
  EXPECT_GE(stats.batches, 3u);  // 24 rows / cap 8
  EXPECT_GT(stats.MeanBatchRows(), 1.0)
      << "rows were not actually coalesced";
}

TEST_P(BatchParityTest, BatchedEvaluateMatchesModelEvaluate) {
  const data::Dataset ds = TestDataset(24);
  auto model = TrainShared(ds.x, GetParam(), 33);
  const api::EvalOptions options;
  auto reference = model->Evaluate(ds.x, ds.labels, options);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  BatcherConfig config;
  config.max_batch_rows = 64;
  MicroBatcher batcher(config);
  // Interleave transform rows so the evaluate request's slice sits inside
  // a larger mixed batch.
  auto before = batcher.SubmitTransform(model, "m", RowOf(ds.x, 0));
  auto evaluated =
      batcher.SubmitEvaluate(model, "m", ds.x, ds.labels, options);
  auto after = batcher.SubmitTransform(model, "m", RowOf(ds.x, 1));
  ASSERT_TRUE(before.get().ok());
  ASSERT_TRUE(after.get().ok());
  auto result = evaluated.get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().clusters_found, reference.value().clusters_found);
  EXPECT_DOUBLE_EQ(result.value().metrics.accuracy,
                   reference.value().metrics.accuracy);
  EXPECT_DOUBLE_EQ(result.value().metrics.purity,
                   reference.value().metrics.purity);
  EXPECT_DOUBLE_EQ(result.value().metrics.rand_index,
                   reference.value().metrics.rand_index);
  EXPECT_DOUBLE_EQ(result.value().metrics.fmi,
                   reference.value().metrics.fmi);
  EXPECT_DOUBLE_EQ(result.value().metrics.nmi,
                   reference.value().metrics.nmi);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BatchParityTest,
    ::testing::Values(core::ModelKind::kRbm, core::ModelKind::kGrbm,
                      core::ModelKind::kSlsRbm, core::ModelKind::kSlsGrbm),
    [](const ::testing::TestParamInfo<core::ModelKind>& info) {
      std::string name = api::ModelKindRegistryName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace mcirbm::serve
