#include "rng/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace mcirbm::rng {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(8);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3, 5);
    EXPECT_GE(u, -3);
    EXPECT_LT(u, 5);
  }
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(10);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformIndex(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(11);
  const int n = 100000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParamsShiftsAndScales) {
  Rng rng(12);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 0.1);
  EXPECT_NEAR(sum / n, 10.0, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(15);
  const auto perm = rng.Permutation(50);
  std::vector<std::size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(16);
  std::vector<int> v = {1, 2, 2, 3, 3, 3};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(18);
  std::vector<double> w = {0.0, 0.0, 0.0};
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Categorical(w));
  EXPECT_GT(seen.size(), 1u);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent_a(42), parent_b(42);
  Rng child_a = parent_a.Split();
  Rng child_b = parent_b.Split();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child_a.NextUint64(), child_b.NextUint64());
  }
  // Parent stream continues differently from the child's.
  Rng parent_c(42);
  Rng child_c = parent_c.Split();
  EXPECT_NE(parent_c.NextUint64(), child_c.NextUint64());
}

}  // namespace
}  // namespace mcirbm::rng
