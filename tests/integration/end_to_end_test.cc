// Integration tests: the full paper pipeline on miniature versions of both
// dataset families, asserting the qualitative claims end to end.
#include <gtest/gtest.h>

#include "data/paper_datasets.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "eval/report.h"

namespace mcirbm::eval {
namespace {

ExperimentConfig MiniConfig(bool grbm) {
  ExperimentConfig cfg = MakePaperConfig(grbm);
  cfg.repeats = 2;
  cfg.rbm.epochs = 12;
  cfg.rbm.num_hidden = 16;
  cfg.max_instances = 150;  // miniature for test runtime
  return cfg;
}

data::Dataset MiniDataset(int classes, double separation,
                          std::uint64_t seed) {
  data::GaussianMixtureSpec spec;
  spec.name = "mini";
  spec.num_classes = classes;
  spec.num_instances = 120;
  spec.num_features = 16;
  spec.separation = separation;
  spec.informative_fraction = 0.5;
  spec.confusion_fraction = 0.1;
  return data::GenerateGaussianMixture(spec, seed);
}

TEST(EndToEndTest, GrbmFamilySlsBeatsPlainOnModerateData) {
  const auto result =
      RunDatasetExperiment(MiniDataset(3, 3.0, 1), 1, MiniConfig(true));
  // The robust per-dataset paper claim is sls over the plain encoder (raw
  // vs sls is an average-level claim asserted by the bench binaries over
  // the full families, not per miniature dataset).
  const double plain =
      result.cells[1][static_cast<int>(ClustererKind::kKMeans)]
          .accuracy.mean;
  const double sls =
      result.cells[2][static_cast<int>(ClustererKind::kKMeans)]
          .accuracy.mean;
  EXPECT_GE(sls, plain - 0.05);
}

TEST(EndToEndTest, RbmFamilyPipelineProducesCoherentMetrics) {
  const auto result =
      RunDatasetExperiment(MiniDataset(2, 3.5, 2), 1, MiniConfig(false));
  for (int v = 0; v < kNumVariants; ++v) {
    for (int c = 0; c < kNumClusterers; ++c) {
      const auto& cell = result.cells[v][c];
      // Coherence: purity >= accuracy, all in [0,1].
      EXPECT_GE(cell.purity.mean + 1e-9, cell.accuracy.mean);
      EXPECT_GE(cell.rand_index.mean, 0);
      EXPECT_LE(cell.fmi.mean, 1);
    }
  }
}

TEST(EndToEndTest, SupervisionCoverageIsMeaningful) {
  const auto easy =
      RunDatasetExperiment(MiniDataset(2, 6.0, 3), 1, MiniConfig(true));
  EXPECT_GT(easy.supervision_coverage, 0.5);
  EXPECT_GT(easy.supervision_clusters, 0);
}

TEST(EndToEndTest, PaperDatasetGeneratorsFeedTheHarness) {
  // One real (subsampled) paper dataset from each family through the whole
  // harness: a smoke test of the exact bench code path.
  ExperimentConfig grbm_cfg = MiniConfig(true);
  grbm_cfg.max_instances = 120;
  grbm_cfg.rbm.epochs = 6;
  const auto msra = RunDatasetExperiment(data::GenerateMsraLike(0, 1), 1,
                                         grbm_cfg);
  EXPECT_FALSE(msra.dataset.empty());

  ExperimentConfig rbm_cfg = MiniConfig(false);
  rbm_cfg.max_instances = 120;
  rbm_cfg.rbm.epochs = 6;
  const auto uci = RunDatasetExperiment(data::GenerateUciLike(5, 1), 6,
                                        rbm_cfg);
  // Iris-like is easy: even in miniature, raw accuracy should be high.
  EXPECT_GT(uci.cells[0][1].accuracy.mean, 0.7);
}

TEST(EndToEndTest, ShapeChecksRunOnRealResults) {
  std::vector<DatasetExperimentResult> results;
  results.push_back(
      RunDatasetExperiment(MiniDataset(2, 3.0, 5), 1, MiniConfig(true)));
  results.push_back(
      RunDatasetExperiment(MiniDataset(3, 3.5, 6), 2, MiniConfig(true)));
  const auto checks = EvaluateShapeChecks(results, "accuracy", true);
  EXPECT_EQ(checks.size(), 6u);
  // No assertion on pass/fail here (2 miniature datasets are noisy); the
  // bench binaries assert on the full families.
}

}  // namespace
}  // namespace mcirbm::eval
