// End-to-end integration of the extension features on one dataset:
// extended voter ensemble -> majority supervision -> stacked sls encoder
// -> save/load round trip -> iterated self-training, with the downstream
// clustering quality tracked at every stage.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "clustering/kmeans.h"
#include "core/pipeline.h"
#include "core/self_training.h"
#include "core/stack_serialize.h"
#include "core/stacked.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "metrics/external.h"
#include "metrics/internal.h"

namespace mcirbm {
namespace {

class ExtensionsEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    full_ = data::GenerateMsraLike(/*index=*/8, /*seed=*/7);
    dataset_ = data::StratifiedSubsample(full_, 150, 1);
    x_ = dataset_.x;
    data::StandardizeInPlace(&x_);
  }

  double KMeansAccuracy(const linalg::Matrix& features) const {
    clustering::KMeansConfig km;
    km.k = dataset_.num_classes;
    const auto result = clustering::KMeans(km).Cluster(features, 1);
    return metrics::ClusteringAccuracy(dataset_.labels, result.assignment);
  }

  data::Dataset full_;
  data::Dataset dataset_;
  linalg::Matrix x_;
};

TEST_F(ExtensionsEndToEndTest, MajorityEnsembleSupervisionFeedsSlsGrbm) {
  core::SupervisionConfig ensemble;
  ensemble.num_clusters = dataset_.num_classes;
  ensemble.use_agglomerative = true;
  ensemble.use_gmm = true;
  ensemble.strategy = voting::VoteStrategy::kMajority;
  const auto supervision =
      core::ComputeSelfLearningSupervision(x_, ensemble, 5);
  supervision.CheckValid();
  EXPECT_GT(supervision.Coverage(), 0.3);

  core::PipelineConfig config;
  config.model = core::ModelKind::kSlsGrbm;
  config.rbm.num_hidden = 32;
  config.rbm.epochs = 20;
  config.rbm.learning_rate = 1e-4;
  config.sls.supervision_scale = 2500;
  config.sls.disperse_weight = 2.0;
  config.supervision = ensemble;
  const auto result = core::RunEncoderPipeline(x_, config, 7);
  EXPECT_EQ(result.hidden_features.cols(), 32u);
  // The encoder must at least not destroy the structure the raw data has.
  EXPECT_GT(KMeansAccuracy(result.hidden_features),
            KMeansAccuracy(dataset_.x) - 0.1);
}

TEST_F(ExtensionsEndToEndTest, StackTrainSaveLoadTransformAgree) {
  core::StackedLayerConfig bottom;
  bottom.model = core::ModelKind::kSlsGrbm;
  bottom.rbm.num_hidden = 32;
  bottom.rbm.epochs = 15;
  bottom.rbm.learning_rate = 1e-4;
  bottom.sls.supervision_scale = 2500;
  bottom.supervision.num_clusters = dataset_.num_classes;

  core::StackedLayerConfig top = bottom;
  top.model = core::ModelKind::kSlsRbm;
  top.rbm.num_hidden = 16;
  top.rbm.learning_rate = 0.01;

  core::StackedEncoder stack({bottom, top});
  const auto stats = stack.Train(x_, 11);
  ASSERT_EQ(stats.size(), 2u);

  const std::string path = ::testing::TempDir() + "/e2e_stack";
  ASSERT_TRUE(core::SaveStack(stack, path).ok());
  core::LoadedStack loaded;
  ASSERT_TRUE(core::LoadStack(path, &loaded).ok());
  EXPECT_TRUE(
      loaded.Transform(x_).AllClose(stack.Transform(x_), 1e-12));
  std::remove(path.c_str());
  std::remove((path + ".layer0").c_str());
  std::remove((path + ".layer1").c_str());
}

TEST_F(ExtensionsEndToEndTest, SelfTrainingBeatsOrMatchesRawBaseline) {
  core::SelfTrainingConfig config;
  config.pipeline.model = core::ModelKind::kSlsGrbm;
  config.pipeline.rbm.num_hidden = 96;
  config.pipeline.rbm.epochs = 60;
  config.pipeline.rbm.learning_rate = 1e-4;
  config.pipeline.sls.eta = 0.4;
  config.pipeline.sls.supervision_scale = 2500;
  config.pipeline.sls.disperse_weight = 2.0;
  config.pipeline.supervision.num_clusters = dataset_.num_classes;
  config.pipeline.supervision.kmeans_voters = 3;
  config.rounds = 2;
  const auto result = core::RunSelfTraining(x_, config, 7);
  ASSERT_EQ(result.rounds.size(), 2u);

  const double raw = KMeansAccuracy(dataset_.x);
  const double refined = KMeansAccuracy(result.hidden_features);
  EXPECT_GE(refined, raw - 0.05)
      << "self-training must not fall materially below the raw baseline";
}

TEST_F(ExtensionsEndToEndTest, WholeExtensionPathIsDeterministic) {
  auto run_once = [&]() {
    core::SupervisionConfig ensemble;
    ensemble.num_clusters = dataset_.num_classes;
    ensemble.use_agglomerative = true;
    ensemble.use_dbscan = true;
    ensemble.strategy = voting::VoteStrategy::kMajority;
    core::PipelineConfig config;
    config.model = core::ModelKind::kSlsGrbm;
    config.rbm.num_hidden = 16;
    config.rbm.epochs = 10;
    config.rbm.learning_rate = 1e-4;
    config.supervision = ensemble;
    return core::RunEncoderPipeline(x_, config, 13).hidden_features;
  };
  EXPECT_TRUE(run_once().AllClose(run_once(), 0.0));
}

}  // namespace
}  // namespace mcirbm
