// Quickstart: the full mcirbm pipeline on a synthetic dataset in ~40 lines
// of user code (Fig. 1 of the paper, end to end).
//
//   data -> {DP, K-means, AP} -> unanimous voting -> slsGRBM training ->
//   hidden features -> k-means -> external metrics
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "clustering/kmeans.h"
#include "core/pipeline.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/experiment.h"
#include "metrics/external.h"

int main() {
  using namespace mcirbm;

  // 1. One of the paper's datasets-I equivalents (MSRA-MM-like web image
  //    descriptors), subsampled for a fast first run.
  const data::Dataset full = data::GenerateMsraLike(/*index=*/8, /*seed=*/7);
  const data::Dataset dataset = data::StratifiedSubsample(full, 250, 1);

  // 2. Standardize for Gaussian visible units.
  linalg::Matrix x = dataset.x;
  data::StandardizeInPlace(&x);

  // 3. Configure and run the encoder pipeline (slsGRBM) with the
  //    calibrated paper hyper-parameters (η=0.4, lr=1e-4, Section V.B;
  //    width/epochs/scale from EXPERIMENTS.md).
  const eval::ExperimentConfig paper = eval::MakePaperConfig(true);
  core::PipelineConfig config;
  config.model = core::ModelKind::kSlsGrbm;
  config.rbm = paper.rbm;
  config.sls = paper.sls;
  config.supervision = paper.supervision;
  config.supervision.num_clusters = dataset.num_classes;
  const core::PipelineResult result =
      core::RunEncoderPipeline(x, config, /*seed=*/7);

  std::cout << "self-learning supervision: "
            << result.supervision.num_clusters << " credible clusters, "
            << result.supervision.NumCredible() << "/"
            << dataset.num_instances() << " instances credible\n";
  std::cout << "final reconstruction error: "
            << result.final_reconstruction_error << "\n";

  // 4. Cluster the original data (as the paper's raw baseline does) vs
  //    the hidden features and compare.
  clustering::KMeansConfig km;
  km.k = dataset.num_classes;
  const auto raw = clustering::KMeans(km).Cluster(dataset.x, 1);
  const auto hidden =
      clustering::KMeans(km).Cluster(result.hidden_features, 1);

  const metrics::MetricBundle raw_m =
      metrics::ComputeAll(dataset.labels, raw.assignment);
  const metrics::MetricBundle hid_m =
      metrics::ComputeAll(dataset.labels, hidden.assignment);

  std::cout << "\n             accuracy  purity   Rand     FMI\n";
  std::cout << "raw features   " << raw_m.accuracy << "   " << raw_m.purity
            << "   " << raw_m.rand_index << "   " << raw_m.fmi << "\n";
  std::cout << "slsGRBM hidden " << hid_m.accuracy << "   " << hid_m.purity
            << "   " << hid_m.rand_index << "   " << hid_m.fmi << "\n";
  return 0;
}
