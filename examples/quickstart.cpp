// Quickstart: the full mcirbm pipeline on a synthetic dataset through the
// public api facade (Fig. 1 of the paper, end to end).
//
//   data -> {DP, K-means, AP} -> unanimous voting -> slsGRBM training ->
//   hidden features -> k-means -> external metrics
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "api/api.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/experiment.h"

int main() {
  using namespace mcirbm;

  // 1. One of the paper's datasets-I equivalents (MSRA-MM-like web image
  //    descriptors), subsampled for a fast first run.
  const data::Dataset full = data::GenerateMsraLike(/*index=*/8, /*seed=*/7);
  const data::Dataset dataset = data::StratifiedSubsample(full, 250, 1);

  // 2. Standardize for Gaussian visible units.
  linalg::Matrix x = dataset.x;
  data::StandardizeInPlace(&x);

  // 3. Configure and train the encoder (slsGRBM) with the calibrated
  //    paper hyper-parameters (η=0.4, lr=1e-4, Section V.B; width/epochs/
  //    scale from EXPERIMENTS.md). Everything fallible returns StatusOr.
  const eval::ExperimentConfig paper = eval::MakePaperConfig(true);
  core::PipelineConfig config;
  config.model = core::ModelKind::kSlsGrbm;
  config.rbm = paper.rbm;
  config.sls = paper.sls;
  config.supervision = paper.supervision;
  config.supervision.num_clusters = dataset.num_classes;
  auto model = api::Model::Train(x, config, /*seed=*/7);
  if (!model.ok()) {
    std::cerr << "training failed: " << model.status().ToString() << "\n";
    return 1;
  }

  std::cout << "self-learning supervision: "
            << model.value().supervision().num_clusters
            << " credible clusters, "
            << model.value().supervision().NumCredible() << "/"
            << dataset.num_instances() << " instances credible\n";
  std::cout << "final reconstruction error: "
            << model.value().final_reconstruction_error() << "\n";

  // 4. Cluster the original data (as the paper's raw baseline does) vs
  //    the hidden features and compare — one Evaluate call each.
  api::EvalOptions eval_options;
  eval_options.clusterer = "kmeans";
  eval_options.k = dataset.num_classes;
  eval_options.seed = 1;
  // Raw baseline: k-means straight from the registry.
  ParamMap params;
  params.Set("k", std::to_string(dataset.num_classes));
  auto kmeans =
      clustering::ClustererRegistry::Global().Create("kmeans", params);
  const auto raw = kmeans.value()->Cluster(dataset.x, 1);
  const metrics::MetricBundle raw_m =
      metrics::ComputeAll(dataset.labels, raw.assignment);
  // Hidden features: straight through the model (transform + cluster +
  // score in one call). Note the paper clusters raw on the *original*
  // representation, so Evaluate runs on the standardized x only for the
  // hidden side.
  auto hid = model.value().Evaluate(x, dataset.labels, eval_options);
  if (!hid.ok()) {
    std::cerr << "evaluate failed: " << hid.status().ToString() << "\n";
    return 1;
  }
  const metrics::MetricBundle& hid_m = hid.value().metrics;

  std::cout << "\n             accuracy  purity   Rand     FMI\n";
  std::cout << "raw features   " << raw_m.accuracy << "   " << raw_m.purity
            << "   " << raw_m.rand_index << "   " << raw_m.fmi << "\n";
  std::cout << "slsGRBM hidden " << hid_m.accuracy << "   " << hid_m.purity
            << "   " << hid_m.rand_index << "   " << hid_m.fmi << "\n";
  return 0;
}
