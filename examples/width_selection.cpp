// Width selection: choose the encoder's hidden width without labels.
//
// The paper never reports how its hidden sizes were picked. This example
// sweeps candidate widths with core::SelectHiddenWidth, which scores each
// trained encoder by the silhouette of a k-means clustering of its hidden
// features — purely internal, no ground truth — then shows how the
// label-free choice compares to the (diagnostic-only) labeled accuracy.
//
// Build & run:  ./build/examples/width_selection
#include <iomanip>
#include <iostream>
#include <vector>

#include "api/api.h"
#include "core/model_selection.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/experiment.h"
#include "metrics/external.h"

int main() {
  using namespace mcirbm;

  const data::Dataset full = data::GenerateMsraLike(/*index=*/8, /*seed=*/7);
  const data::Dataset dataset = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = dataset.x;
  data::StandardizeInPlace(&x);

  const eval::ExperimentConfig paper = eval::MakePaperConfig(true);
  core::PipelineConfig config;
  config.model = core::ModelKind::kSlsGrbm;
  config.rbm = paper.rbm;
  config.sls = paper.sls;
  config.supervision = paper.supervision;
  config.supervision.num_clusters = dataset.num_classes;

  const std::vector<int> widths = {16, 32, 64, 96, 128};
  const auto selection = core::SelectHiddenWidth(
      x, config, widths, dataset.num_classes, /*seed=*/7);

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "width  silhouette(label-free)  recon-error  "
               "accuracy(diagnostic)\n";
  for (const auto& candidate : selection.candidates) {
    // Diagnostic column only: retrain at this width through the facade
    // and score against ground truth. The selection itself never saw a
    // label.
    core::PipelineConfig probe = config;
    probe.rbm.num_hidden = candidate.num_hidden;
    auto model = api::Model::Train(x, probe, 7);
    if (!model.ok()) {
      std::cerr << "training failed: " << model.status().ToString() << "\n";
      return 1;
    }
    api::EvalOptions options;
    options.k = dataset.num_classes;
    options.seed = 7;
    const double accuracy =
        model.value().Evaluate(x, dataset.labels, options)
            .value()
            .metrics.accuracy;
    std::cout << std::setw(5) << candidate.num_hidden << std::setw(14)
              << candidate.silhouette << std::setw(18)
              << candidate.reconstruction_error << std::setw(14) << accuracy
              << (candidate.num_hidden == selection.best_num_hidden
                      ? "   <- selected"
                      : "")
              << "\n";
  }
  std::cout << "\nlabel-free selection picks width "
            << selection.best_num_hidden << "\n";
  return 0;
}
