// Domain example: batch feature extraction for downstream tooling.
//
// Trains an slsRBM through the api facade, exports the hidden-layer
// features plus labels to CSV (LoadDatasetCsv-compatible), and verifies
// the round trip — the workflow for feeding mcirbm representations into
// external analysis stacks (pandas, R, ...).
//
// Usage: export_features [output.csv]
#include <iostream>
#include <string>

#include "api/api.h"
#include "data/io.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"

int main(int argc, char** argv) {
  using namespace mcirbm;
  const std::string out_path =
      argc > 1 ? argv[1] : "/tmp/mcirbm_features.csv";

  // A mid-sized UCI-like dataset (Breast Cancer Wisconsin shape).
  const data::Dataset ds = data::GenerateUciLike(4, /*seed=*/7);
  linalg::Matrix x = ds.x;
  data::MinMaxScaleInPlace(&x);

  core::PipelineConfig cfg;
  cfg.model = core::ModelKind::kSlsRbm;
  cfg.rbm.num_hidden = 16;
  cfg.rbm.epochs = 30;
  cfg.rbm.learning_rate = 1e-5;
  cfg.sls.eta = 0.5;
  cfg.supervision.num_clusters = ds.num_classes;
  auto model = api::Model::Train(x, cfg, 7);
  if (!model.ok()) {
    std::cerr << "training failed: " << model.status().ToString() << "\n";
    return 1;
  }
  auto hidden = model.value().Transform(x);
  if (!hidden.ok()) {
    std::cerr << "transform failed: " << hidden.status().ToString() << "\n";
    return 1;
  }

  // Package hidden features + ground-truth labels as a Dataset and save.
  data::Dataset features;
  features.name = ds.name + " (slsRBM features)";
  features.x = std::move(hidden).value();
  features.labels = ds.labels;
  features.num_classes = ds.num_classes;
  const Status status = data::SaveDatasetCsv(features, out_path);
  if (!status.ok()) {
    std::cerr << "export failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << features.num_instances() << " x "
            << features.num_features() << " feature matrix to " << out_path
            << "\n";

  // Round-trip check.
  auto reloaded = data::LoadDatasetCsv(out_path, features.name);
  if (!reloaded.ok()) {
    std::cerr << "reload failed: " << reloaded.status().ToString() << "\n";
    return 1;
  }
  const bool same =
      reloaded.value().x.AllClose(features.x, 1e-9) &&
      reloaded.value().labels == features.labels;
  std::cout << "round-trip verification: " << (same ? "OK" : "MISMATCH")
            << "\n";
  return same ? 0 : 1;
}
