// Domain example: slsRBM on binary-visible (UCI-like) tabular data — the
// paper's datasets II scenario, including the binarization step and model
// checkpointing via the serialization API.
//
// Usage: uci_pipeline [dataset-index 0..5]
#include <cstdlib>
#include <iostream>

#include "core/pipeline.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/algorithms.h"
#include "metrics/external.h"
#include "rbm/serialize.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace mcirbm;

  const int index = argc > 1 ? std::atoi(argv[1]) : 5;  // default: Iris
  if (index < 0 || index >= data::NumUciDatasets()) {
    std::cerr << "dataset index must be 0.." << data::NumUciDatasets() - 1
              << "\n";
    return 1;
  }

  const data::Dataset ds = data::GenerateUciLike(index, /*seed=*/7);
  std::cout << "dataset: " << ds.name << " — " << ds.num_instances()
            << " x " << ds.num_features() << ", " << ds.num_classes
            << " classes\n";

  // Binary visible units: rescale features into [0,1] Bernoulli
  // probabilities (the standard treatment of bounded tabular features).
  linalg::Matrix x = ds.x;
  data::MinMaxScaleInPlace(&x);

  core::PipelineConfig cfg;
  cfg.model = core::ModelKind::kSlsRbm;
  cfg.rbm.num_hidden = 32;
  cfg.rbm.epochs = 40;
  cfg.rbm.learning_rate = 1e-5;  // paper, Section V.B
  cfg.sls.eta = 0.5;             // paper, Section V.B
  cfg.sls.supervision_scale = 1000.0;
  cfg.supervision.num_clusters = ds.num_classes;
  const core::PipelineResult result = core::RunEncoderPipeline(x, cfg, 7);

  // Checkpoint the trained encoder and restore it into a fresh model.
  const std::string path = "/tmp/mcirbm_uci_model.txt";
  const Status save_status = rbm::SaveParameters(*result.model, path);
  std::cout << "checkpoint save: " << save_status.ToString() << "\n";
  rbm::RbmConfig restored_cfg = result.model->config();
  core::SlsRbm restored(restored_cfg, cfg.sls, result.supervision);
  const Status load_status = rbm::LoadParameters(path, &restored);
  std::cout << "checkpoint load: " << load_status.ToString() << "\n";
  const linalg::Matrix h = restored.HiddenFeatures(x);

  std::cout << "\nclusterer   accuracy(raw)  accuracy(slsRBM hidden)\n";
  for (int c = 0; c < eval::kNumClusterers; ++c) {
    const auto kind = static_cast<eval::ClustererKind>(c);
    const auto raw = eval::RunClusterer(kind, ds.x, ds.num_classes, 11);
    const auto sls = eval::RunClusterer(kind, h, ds.num_classes, 11);
    std::cout << PadRight(eval::ClustererKindName(kind), 12)
              << PadLeft(FormatDouble(metrics::ClusteringAccuracy(
                                          ds.labels, raw.assignment),
                                      4),
                         10)
              << PadLeft(FormatDouble(metrics::ClusteringAccuracy(
                                          ds.labels, sls.assignment),
                                      4),
                         20)
              << "\n";
  }
  return 0;
}
