// Domain example: slsRBM on binary-visible (UCI-like) tabular data — the
// paper's datasets II scenario, including the binarization step and model
// checkpointing through the versioned api::Model artifact.
//
// Usage: uci_pipeline [dataset-index 0..5]
#include <cstdlib>
#include <iostream>

#include "api/api.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/algorithms.h"
#include "metrics/external.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace mcirbm;

  const int index = argc > 1 ? std::atoi(argv[1]) : 5;  // default: Iris
  if (index < 0 || index >= data::NumUciDatasets()) {
    std::cerr << "dataset index must be 0.." << data::NumUciDatasets() - 1
              << "\n";
    return 1;
  }

  const data::Dataset ds = data::GenerateUciLike(index, /*seed=*/7);
  std::cout << "dataset: " << ds.name << " — " << ds.num_instances()
            << " x " << ds.num_features() << ", " << ds.num_classes
            << " classes\n";

  // Binary visible units: rescale features into [0,1] Bernoulli
  // probabilities (the standard treatment of bounded tabular features).
  linalg::Matrix x = ds.x;
  data::MinMaxScaleInPlace(&x);

  core::PipelineConfig cfg;
  cfg.model = core::ModelKind::kSlsRbm;
  cfg.rbm.num_hidden = 32;
  cfg.rbm.epochs = 40;
  cfg.rbm.learning_rate = 1e-5;  // paper, Section V.B
  cfg.sls.eta = 0.5;             // paper, Section V.B
  cfg.sls.supervision_scale = 1000.0;
  cfg.supervision.num_clusters = ds.num_classes;
  auto trained = api::Model::Train(x, cfg, 7);
  if (!trained.ok()) {
    std::cerr << "training failed: " << trained.status().ToString() << "\n";
    return 1;
  }

  // Checkpoint the trained encoder and restore it through the unified
  // artifact: one Save, one Load, no model-specific plumbing.
  const std::string path = "/tmp/mcirbm_uci_model.txt";
  const Status save_status = trained.value().Save(path);
  std::cout << "checkpoint save: " << save_status.ToString() << "\n";
  auto restored = api::Model::Load(path);
  std::cout << "checkpoint load: " << restored.status().ToString() << "\n";
  if (!restored.ok()) return 1;
  auto hidden = restored.value().Transform(x);
  if (!hidden.ok()) {
    std::cerr << "transform failed: " << hidden.status().ToString() << "\n";
    return 1;
  }
  const linalg::Matrix& h = hidden.value();

  std::cout << "\nclusterer   accuracy(raw)  accuracy(slsRBM hidden)\n";
  for (int c = 0; c < eval::kNumClusterers; ++c) {
    const auto kind = static_cast<eval::ClustererKind>(c);
    const auto raw = eval::RunClusterer(kind, ds.x, ds.num_classes, 11);
    const auto sls = eval::RunClusterer(kind, h, ds.num_classes, 11);
    std::cout << PadRight(eval::ClustererKindName(kind), 12)
              << PadLeft(FormatDouble(metrics::ClusteringAccuracy(
                                          ds.labels, raw.assignment),
                                      4),
                         10)
              << PadLeft(FormatDouble(metrics::ClusteringAccuracy(
                                          ds.labels, sls.assignment),
                                      4),
                         20)
              << "\n";
  }
  return 0;
}
