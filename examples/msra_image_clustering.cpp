// Domain example: unsupervised clustering of (MSRA-MM-like) web image
// features with slsGRBM — the paper's datasets I scenario.
//
// Walks one dataset through every stage with commentary: base clusterers,
// unanimous voting, slsGRBM training, and the three-way comparison
// raw / GRBM / slsGRBM for each of DP, K-means, AP.
//
// Usage: msra_image_clustering [dataset-index 0..8] [max-instances]
#include <cstdlib>
#include <iostream>

#include "api/api.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/algorithms.h"
#include "eval/experiment.h"
#include "metrics/external.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace mcirbm;

  const int index = argc > 1 ? std::atoi(argv[1]) : 0;
  const std::size_t cap = argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 300;
  if (index < 0 || index >= data::NumMsraDatasets()) {
    std::cerr << "dataset index must be 0.." << data::NumMsraDatasets() - 1
              << "\n";
    return 1;
  }

  const data::Dataset full = data::GenerateMsraLike(index, /*seed=*/7);
  const data::Dataset ds = data::StratifiedSubsample(full, cap, 1);
  std::cout << "dataset: " << ds.name << " — " << ds.num_instances()
            << " instances x " << ds.num_features() << " features, "
            << ds.num_classes << " relevance classes\n";

  // Raw baselines cluster the original descriptor space.
  const linalg::Matrix& x_raw = ds.x;
  // The encoder consumes standardized features (Gaussian visible units).
  linalg::Matrix x = ds.x;
  data::StandardizeInPlace(&x);

  // Calibrated paper hyper-parameters (the same ones the bench harness
  // uses; see eval::MakePaperConfig and EXPERIMENTS.md).
  const eval::ExperimentConfig paper = eval::MakePaperConfig(true);

  // Stage 1-2: multi-clustering integration on the visible layer, with
  // the voters expressed as registry specs ("dp", "kmeans"×3, "ap").
  core::SupervisionConfig sup_cfg = paper.supervision;
  sup_cfg.num_clusters = ds.num_classes;
  sup_cfg.voters = {{"dp", {}, 1},
                    {"kmeans", {}, paper.supervision.kmeans_voters},
                    {"ap", {}, 1}};
  auto supervision_or = core::TryComputeSelfLearningSupervision(x, sup_cfg, 3);
  if (!supervision_or.ok()) {
    std::cerr << "supervision failed: "
              << supervision_or.status().ToString() << "\n";
    return 1;
  }
  const voting::LocalSupervision& supervision = supervision_or.value();
  std::cout << "\nunanimous voting kept " << supervision.NumCredible()
            << " credible instances in " << supervision.num_clusters
            << " local clusters (coverage "
            << FormatDouble(supervision.Coverage(), 3) << ")\n";

  // Stage 3: train plain GRBM and slsGRBM side by side via the facade.
  core::PipelineConfig plain_cfg;
  plain_cfg.model = core::ModelKind::kGrbm;
  plain_cfg.rbm = paper.rbm;
  auto plain = api::Model::Train(x, plain_cfg, 7);

  core::PipelineConfig sls_cfg = plain_cfg;
  sls_cfg.model = core::ModelKind::kSlsGrbm;
  sls_cfg.sls = paper.sls;
  sls_cfg.supervision = sup_cfg;
  auto sls = api::Model::Train(x, sls_cfg, 7);
  if (!plain.ok() || !sls.ok()) {
    std::cerr << "training failed\n";
    return 1;
  }
  const linalg::Matrix plain_hidden = plain.value().Transform(x).value();
  const linalg::Matrix sls_hidden = sls.value().Transform(x).value();

  // Stage 4: the paper's 3x3 comparison on this dataset.
  std::cout << "\nclusterer   variant        accuracy  purity   FMI\n";
  const linalg::Matrix* feats[3] = {&x_raw, &plain_hidden, &sls_hidden};
  const char* variant_names[3] = {"raw       ", "+GRBM     ", "+slsGRBM  "};
  for (int c = 0; c < eval::kNumClusterers; ++c) {
    for (int v = 0; v < 3; ++v) {
      const auto result = eval::RunClusterer(
          static_cast<eval::ClustererKind>(c), *feats[v], ds.num_classes,
          11);
      const auto m = metrics::ComputeAll(ds.labels, result.assignment);
      std::cout << PadRight(eval::ClustererKindName(
                                static_cast<eval::ClustererKind>(c)),
                            12)
                << variant_names[v] << "   "
                << FormatDouble(m.accuracy, 4) << "    "
                << FormatDouble(m.purity, 4) << "   "
                << FormatDouble(m.fmi, 4) << "\n";
    }
  }
  return 0;
}
