// Deep stack: greedy layer-wise stacking of sls encoders.
//
// The paper trains a single encoding layer. This example stacks an
// slsGRBM bottom layer with slsRBM upper layers — each recomputing the
// self-learning local supervision in its own input space — and reports
// how downstream clustering accuracy changes with depth. The trained
// stack is persisted with core::SaveStack and reloaded through the
// unified api::Model::Load entry point to confirm inference parity.
//
// Build & run:  ./build/examples/deep_stack
#include <iomanip>
#include <iostream>

#include "api/api.h"
#include "clustering/kmeans.h"
#include "core/stack_serialize.h"
#include "core/stacked.h"
#include "data/paper_datasets.h"
#include "eval/experiment.h"
#include "data/transforms.h"
#include "metrics/external.h"
#include "metrics/internal.h"

int main() {
  using namespace mcirbm;

  const data::Dataset full = data::GenerateMsraLike(/*index=*/4, /*seed=*/7);
  const data::Dataset dataset = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = dataset.x;
  data::StandardizeInPlace(&x);

  // Bottom layer: slsGRBM on the real-valued inputs (paper setting).
  const eval::ExperimentConfig paper = eval::MakePaperConfig(true);
  core::StackedLayerConfig bottom;
  bottom.model = core::ModelKind::kSlsGrbm;
  bottom.rbm = paper.rbm;
  bottom.sls = paper.sls;
  bottom.supervision = paper.supervision;
  bottom.supervision.num_clusters = dataset.num_classes;

  // Upper layers: slsRBM on the sigmoid activations below, each
  // re-deriving its local supervision from its own input space.
  core::StackedLayerConfig middle = bottom;
  middle.model = core::ModelKind::kSlsRbm;
  middle.rbm.num_hidden = 24;
  middle.rbm.learning_rate = 0.01;

  core::StackedLayerConfig top = middle;
  top.rbm.num_hidden = 12;

  core::StackedEncoder stack({bottom, middle, top});
  const auto stats = stack.Train(x, /*seed=*/7);

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "layer  width  supervision-coverage\n";
  for (std::size_t l = 0; l < stack.num_layers(); ++l) {
    std::cout << "  " << l << "     " << std::setw(4)
              << stack.layer(l).config().num_hidden << "   "
              << stats[l].supervision_coverage << "\n";
  }

  // Cluster the representation at every depth.
  clustering::KMeansConfig km;
  km.k = dataset.num_classes;
  std::cout << "\ndepth  k-means accuracy  silhouette\n";
  {
    const auto raw = clustering::KMeans(km).Cluster(dataset.x, 1);
    std::cout << "raw    " << std::setw(10)
              << metrics::ClusteringAccuracy(dataset.labels, raw.assignment)
              << std::setw(13)
              << metrics::SilhouetteScore(dataset.x, dataset.labels) << "\n";
  }
  for (std::size_t depth = 1; depth <= stack.num_layers(); ++depth) {
    const linalg::Matrix features = stack.Transform(x, depth);
    const auto clusters = clustering::KMeans(km).Cluster(features, 1);
    std::cout << "  " << depth << "    " << std::setw(10)
              << metrics::ClusteringAccuracy(dataset.labels,
                                             clusters.assignment)
              << std::setw(13)
              << metrics::SilhouetteScore(features, dataset.labels) << "\n";
  }

  // Persist the stack manifest and reload it through the unified model
  // entry point: api::Model::Load dispatches on the file's magic line, so
  // single models and stacks round-trip through the same call.
  const std::string path = "/tmp/mcirbm_deep_stack.txt";
  const Status save_status = core::SaveStack(stack, path);
  if (!save_status.ok()) {
    std::cerr << "stack save failed: " << save_status.ToString() << "\n";
    return 1;
  }
  auto reloaded = api::Model::Load(path);
  if (!reloaded.ok()) {
    std::cerr << "stack load failed: " << reloaded.status().ToString()
              << "\n";
    return 1;
  }
  const bool parity = reloaded.value()
                          .Transform(x)
                          .value()
                          .AllClose(stack.Transform(x), 1e-12);
  std::cout << "\nsaved " << reloaded.value().num_layers()
            << "-layer stack; api::Model::Load transform parity: "
            << (parity ? "OK" : "MISMATCH") << "\n";
  return parity ? 0 : 1;
}
