// Self-training loop: iterate the paper's pipeline by re-deriving the
// local supervision from the encoder's own hidden features.
//
// Round 0 is exactly the paper's slsGRBM pipeline. Each later round runs
// the clustering ensemble on the *hidden features* of the previous round
// — if the encoder really constricts/disperses the feature space, the
// ensemble should agree on more instances (higher consensus coverage),
// which in turn supervises a better encoder.
//
// Build & run:  ./build/examples/self_training_loop
#include <iomanip>
#include <iostream>

#include "api/api.h"
#include "core/self_training.h"
#include "data/paper_datasets.h"
#include "eval/experiment.h"
#include "data/transforms.h"
#include "metrics/external.h"

int main() {
  using namespace mcirbm;

  const data::Dataset full = data::GenerateMsraLike(/*index=*/8, /*seed=*/7);
  const data::Dataset dataset = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = dataset.x;
  data::StandardizeInPlace(&x);

  const eval::ExperimentConfig paper = eval::MakePaperConfig(true);
  core::SelfTrainingConfig config;
  config.pipeline.model = core::ModelKind::kSlsGrbm;
  config.pipeline.rbm = paper.rbm;
  config.pipeline.sls = paper.sls;
  // Later rounds reach near-full consensus coverage; the trust-region cap
  // keeps the (coverage-proportional) supervision step from over-
  // constricting the feature space at that point.
  config.pipeline.sls.max_grad_norm = 500.0;
  config.pipeline.supervision = paper.supervision;
  config.pipeline.supervision.num_clusters = dataset.num_classes;
  config.rounds = 4;

  const auto result = core::RunSelfTraining(x, config, /*seed=*/7);

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "round  coverage  clusters  recon-error\n";
  for (const auto& round : result.rounds) {
    std::cout << "  " << round.round << "    " << std::setw(7)
              << round.supervision_coverage << std::setw(9)
              << round.supervision_clusters << std::setw(13)
              << round.final_reconstruction_error << "\n";
  }
  if (result.stopped_early) {
    std::cout << "(stopped early: consensus coverage stabilized)\n";
  }

  // Downstream comparison through the clusterer registry.
  ParamMap km;
  km.Set("k", std::to_string(dataset.num_classes));
  auto kmeans = clustering::ClustererRegistry::Global().Create("kmeans", km);
  const auto raw = kmeans.value()->Cluster(dataset.x, 1);
  const auto refined = kmeans.value()->Cluster(result.hidden_features, 1);
  std::cout << "\nk-means accuracy on original data: "
            << metrics::ClusteringAccuracy(dataset.labels, raw.assignment)
            << "  after " << result.rounds.size()
            << " self-training rounds: "
            << metrics::ClusteringAccuracy(dataset.labels,
                                           refined.assignment)
            << "\n";
  return 0;
}
