// Ensemble members: swap and extend the clusterers behind the
// multi-clustering integration, using registry voter specs.
//
// The paper integrates DP, K-means and AP with unanimous voting. This
// example adds the extended voters (Ward agglomerative, DBSCAN, GMM,
// spectral) by name through clustering::ClustererRegistry and shows the
// precision/coverage trade-off of each member set, then trains an slsGRBM
// from the strictest consensus.
//
// Build & run:  ./build/examples/ensemble_members
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "api/api.h"
#include "data/paper_datasets.h"
#include "data/transforms.h"
#include "eval/experiment.h"
#include "metrics/external.h"

int main() {
  using namespace mcirbm;

  const data::Dataset full = data::GenerateMsraLike(/*index=*/4, /*seed=*/7);
  const data::Dataset dataset = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = dataset.x;
  data::StandardizeInPlace(&x);

  // Member sets as ordered voter lists — the same "name" / "name*count"
  // syntax the CLI's --voters flag and config files use.
  struct MemberSet {
    std::string label;
    std::string voters;
    voting::VoteStrategy strategy = voting::VoteStrategy::kUnanimous;
  };
  const std::vector<MemberSet> sets = {
      {"paper: DP+KM+AP", "dp,kmeans,ap"},
      {"+ Ward linkage", "dp,kmeans,ap,agglomerative"},
      {"+ GMM", "dp,kmeans,ap,agglomerative,gmm"},
      // Unanimity gets stricter with every member; over the full 7-voter
      // ensemble it collapses to near-zero coverage, so the full set votes
      // by majority instead — the right reduction for large ensembles.
      {"full (unanimous)", "dp,kmeans,ap,agglomerative,gmm,dbscan,spectral"},
      {"full (majority)", "dp,kmeans,ap,agglomerative,gmm,dbscan,spectral",
       voting::VoteStrategy::kMajority},
  };

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "member set          coverage  consensus-purity\n";
  core::SupervisionConfig last_config;
  for (const auto& set : sets) {
    core::SupervisionConfig config;
    config.num_clusters = dataset.num_classes;
    config.strategy = set.strategy;
    auto voters = core::ParseVoterList(set.voters);
    if (!voters.ok()) {
      std::cerr << "bad voter list: " << voters.status().ToString() << "\n";
      return 1;
    }
    config.voters = std::move(voters).value();
    last_config = config;
    auto sup_or = core::TryComputeSelfLearningSupervision(x, config, 5);
    if (!sup_or.ok()) {
      std::cerr << "supervision failed: " << sup_or.status().ToString()
                << "\n";
      return 1;
    }
    const voting::LocalSupervision& sup = sup_or.value();
    // Purity of the credible instances against ground truth (diagnostic
    // only — the pipeline itself never sees labels).
    std::vector<int> truth, pred;
    for (std::size_t i = 0; i < sup.cluster_of.size(); ++i) {
      if (sup.cluster_of[i] < 0) continue;
      truth.push_back(dataset.labels[i]);
      pred.push_back(sup.cluster_of[i]);
    }
    const double purity =
        pred.empty() ? 0.0 : metrics::Purity(truth, pred);
    std::cout << std::left << std::setw(20) << set.label << std::right
              << std::setw(8) << sup.Coverage() << std::setw(14) << purity
              << "\n";
  }

  // Train an slsGRBM from the majority consensus of the full ensemble
  // and compare downstream clustering with the raw features.
  const eval::ExperimentConfig paper = eval::MakePaperConfig(true);
  core::PipelineConfig pipeline;
  pipeline.model = core::ModelKind::kSlsGrbm;
  pipeline.rbm = paper.rbm;
  pipeline.sls = paper.sls;
  pipeline.supervision = last_config;
  auto model = api::Model::Train(x, pipeline, 7);
  if (!model.ok()) {
    std::cerr << "training failed: " << model.status().ToString() << "\n";
    return 1;
  }

  ParamMap km;
  km.Set("k", std::to_string(dataset.num_classes));
  auto kmeans = clustering::ClustererRegistry::Global().Create("kmeans", km);
  const auto raw = kmeans.value()->Cluster(dataset.x, 1);
  const auto hidden =
      kmeans.value()->Cluster(model.value().Transform(x).value(), 1);
  std::cout << "\nk-means accuracy on original data: "
            << metrics::ClusteringAccuracy(dataset.labels, raw.assignment)
            << "  hidden(majority-ensemble slsGRBM): "
            << metrics::ClusteringAccuracy(dataset.labels, hidden.assignment)
            << "\n";
  return 0;
}
