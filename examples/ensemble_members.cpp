// Ensemble members: swap and extend the clusterers behind the
// multi-clustering integration.
//
// The paper integrates DP, K-means and AP with unanimous voting. This
// example adds the extended voters (Ward agglomerative, DBSCAN, GMM,
// spectral) and shows the precision/coverage trade-off of each member
// set, then trains an slsGRBM from the strictest consensus.
//
// Build & run:  ./build/examples/ensemble_members
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "clustering/kmeans.h"
#include "core/pipeline.h"
#include "data/paper_datasets.h"
#include "eval/experiment.h"
#include "data/transforms.h"
#include "metrics/external.h"
#include "voting/vote.h"

int main() {
  using namespace mcirbm;

  const data::Dataset full = data::GenerateMsraLike(/*index=*/4, /*seed=*/7);
  const data::Dataset dataset = data::StratifiedSubsample(full, 250, 1);
  linalg::Matrix x = dataset.x;
  data::StandardizeInPlace(&x);

  // Member sets to compare, from the paper's trio to the full ensemble.
  struct MemberSet {
    std::string label;
    core::SupervisionConfig config;
  };
  std::vector<MemberSet> sets;
  {
    core::SupervisionConfig paper;
    paper.num_clusters = dataset.num_classes;
    sets.push_back({"paper: DP+KM+AP", paper});

    core::SupervisionConfig plus_ward = paper;
    plus_ward.use_agglomerative = true;
    sets.push_back({"+ Ward linkage", plus_ward});

    core::SupervisionConfig plus_gmm = plus_ward;
    plus_gmm.use_gmm = true;
    sets.push_back({"+ GMM", plus_gmm});

    // Unanimity gets stricter with every member; over the full 7-voter
    // ensemble it collapses to near-zero coverage, so the full set votes
    // by majority instead — the right reduction for large ensembles.
    core::SupervisionConfig full = plus_gmm;
    full.use_dbscan = true;
    full.use_spectral = true;
    sets.push_back({"full (unanimous)", full});

    core::SupervisionConfig full_majority = full;
    full_majority.strategy = voting::VoteStrategy::kMajority;
    sets.push_back({"full (majority)", full_majority});
  }

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "member set          coverage  consensus-purity\n";
  for (const auto& set : sets) {
    const auto sup = core::ComputeSelfLearningSupervision(x, set.config, 5);
    // Purity of the credible instances against ground truth (diagnostic
    // only — the pipeline itself never sees labels).
    std::vector<int> truth, pred;
    for (std::size_t i = 0; i < sup.cluster_of.size(); ++i) {
      if (sup.cluster_of[i] < 0) continue;
      truth.push_back(dataset.labels[i]);
      pred.push_back(sup.cluster_of[i]);
    }
    const double purity =
        pred.empty() ? 0.0 : metrics::Purity(truth, pred);
    std::cout << std::left << std::setw(20) << set.label << std::right
              << std::setw(8) << sup.Coverage() << std::setw(14) << purity
              << "\n";
  }

  // Train an slsGRBM from the majority consensus of the full ensemble
  // and compare downstream clustering with the raw features.
  const eval::ExperimentConfig paper = eval::MakePaperConfig(true);
  core::PipelineConfig pipeline;
  pipeline.model = core::ModelKind::kSlsGrbm;
  pipeline.rbm = paper.rbm;
  pipeline.sls = paper.sls;
  pipeline.supervision = sets.back().config;
  const auto result = core::RunEncoderPipeline(x, pipeline, 7);

  clustering::KMeansConfig km;
  km.k = dataset.num_classes;
  const auto raw = clustering::KMeans(km).Cluster(dataset.x, 1);
  const auto hidden =
      clustering::KMeans(km).Cluster(result.hidden_features, 1);
  std::cout << "\nk-means accuracy on original data: "
            << metrics::ClusteringAccuracy(dataset.labels, raw.assignment)
            << "  hidden(majority-ensemble slsGRBM): "
            << metrics::ClusteringAccuracy(dataset.labels, hidden.assignment)
            << "\n";
  return 0;
}
