// Fantasy sampling: the generative side of the RBM substrate.
//
// Trains a binary RBM on a two-mode Bernoulli pattern distribution
// (left-half-on vs right-half-on 16-bit templates with 5% flip noise),
// then runs Gibbs chains from pure noise. If training captured the
// distribution, the fantasies concentrate on the two templates — which
// is directly measurable: the fraction of fantasies within Hamming
// distance 2 of a template vs the ~0.2% a uniform sampler would achieve.
//
// Build & run:  ./build/examples/fantasy_sampling
#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>

#include "api/api.h"
#include "linalg/matrix.h"
#include "rbm/sampling.h"
#include "rng/rng.h"

namespace {

constexpr std::size_t kBits = 16;

// Bernoulli draws around the left-half-on / right-half-on templates.
mcirbm::linalg::Matrix TwoModeData(std::size_t n, mcirbm::rng::Rng* rng) {
  mcirbm::linalg::Matrix x(n, kBits);
  for (std::size_t i = 0; i < n; ++i) {
    const bool left = i % 2 == 0;
    for (std::size_t j = 0; j < kBits; ++j) {
      const double p = (left == (j < kBits / 2)) ? 0.95 : 0.05;
      x(i, j) = rng->Bernoulli(p) ? 1.0 : 0.0;
    }
  }
  return x;
}

// Hamming distance from a rounded row to the nearest template.
int HammingToNearestTemplate(std::span<const double> row) {
  int to_left = 0, to_right = 0;
  for (std::size_t j = 0; j < row.size(); ++j) {
    const int bit = row[j] >= 0.5 ? 1 : 0;
    const int left_bit = j < row.size() / 2 ? 1 : 0;
    to_left += bit != left_bit;
    to_right += bit != 1 - left_bit;
  }
  return std::min(to_left, to_right);
}

}  // namespace

int main() {
  using namespace mcirbm;

  rng::Rng data_rng(7);
  const linalg::Matrix x = TwoModeData(200, &data_rng);
  std::cout << "data: 200 samples of a two-template 16-bit distribution "
               "(5% flip noise)\n";

  // Build the encoder by name through the model registry — the same
  // string-keyed seam the CLI and config files use.
  const ParamMap params = {{"visible", "16"},     {"hidden", "12"},
                           {"lr", "0.1"},         {"epochs", "200"},
                           {"batch_size", "20"},  {"momentum", "0.5"},
                           // Hinton's two-stage schedule:
                           {"momentum_final", "0.9"},
                           {"weight_decay", "0"}, {"seed", "11"}};
  auto model_or = api::ModelRegistry::Global().Create("rbm", params);
  if (!model_or.ok()) {
    std::cerr << "model construction failed: "
              << model_or.status().ToString() << "\n";
    return 1;
  }
  const std::unique_ptr<rbm::RbmBase> model_ptr =
      std::move(model_or).value();
  rbm::RbmBase& model = *model_ptr;
  const auto history = model.Train(x);
  std::cout << "trained RBM: reconstruction error "
            << history.front().reconstruction_error << " -> "
            << history.back().reconstruction_error << "\n\n";

  const linalg::Matrix fantasies = rbm::SampleFantasiesFromNoise(
      model, /*num_samples=*/500, {.burn_in = 300, .seed = 3});

  // How concentrated are the fantasies on the data's two modes?
  std::size_t exact = 0, near = 0;
  double mean_hamming = 0;
  for (std::size_t f = 0; f < fantasies.rows(); ++f) {
    const int d = HammingToNearestTemplate(fantasies.Row(f));
    mean_hamming += d;
    if (d == 0) ++exact;
    if (d <= 2) ++near;
  }
  mean_hamming /= static_cast<double>(fantasies.rows());

  // Uniform baseline: P(Hamming <= 2 of either template) =
  // 2 * (C(16,0)+C(16,1)+C(16,2)) / 2^16 ≈ 0.42%.
  std::cout << std::fixed << std::setprecision(4);
  std::cout << "fantasies exactly on a template:      " << exact << "/"
            << fantasies.rows() << "\n";
  std::cout << "fantasies within Hamming 2 of one:    " << near << "/"
            << fantasies.rows() << "  (uniform sampler: ~0.4%)\n";
  std::cout << "mean Hamming distance to nearest:     " << mean_hamming
            << "  (uniform sampler: ~6.0 of 16 bits)\n";
  return 0;
}
